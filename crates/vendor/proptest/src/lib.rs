//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, range / tuple / `option::of` / `collection::vec` strategies,
//! and `prop_assert!` / `prop_assert_eq!`. Failing cases report the
//! sampled inputs; there is no shrinking (a failure prints the exact
//! inputs, which is enough to reproduce — runs are deterministic, the
//! per-test RNG is seeded from the test name).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.random_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.random_below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.random::<f32>() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));

/// `Option` strategies (mirrors `proptest::option`).
pub mod option {
    use super::{Rng, StdRng, Strategy};

    /// Strategy producing `None` a quarter of the time, else `Some`.
    pub struct OfStrategy<S>(S);

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Wrap `inner` so it sometimes yields `None`.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vector of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything user code normally imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Deterministic per-test RNG, seeded from the test's name.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Assert inside a proptest body; failures abort the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Define property tests: random inputs drawn from strategies, each
/// body run for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("" $(, stringify!($arg), " = {:?}  ")*),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "property failed on case {}/{}: {}\n  inputs: {}",
                            __case + 1, config.cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_option_strategies(
            v in crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..8),
            o in crate::option::of(1u32..4),
        ) {
            prop_assert!(v.len() < 8);
            for (a, b) in &v {
                prop_assert!(*a < 1.0 && *b < 1.0);
            }
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
