//! Bank-bundle-indexed memory spaces and placement rules (Sec. V-C).
//!
//! Duplex divides all device memory into four *memory spaces*, one per
//! bank-bundle index; each space uses that bundle in every pseudo
//! channel of every stack. Placement follows the paper:
//!
//! * **expert FFN weights** are allocated one by one across the four
//!   spaces (round-robin), so that expert co-processing can hand whole
//!   spaces to either xPU or Logic-PIM without bank-bundle conflicts;
//! * **KV cache** of decoding sequences alternates among *three* of the
//!   spaces;
//! * the **remaining space** stores the Q/K/V matrices of prefilling
//!   sequences (the xPU side of attention co-processing), from which K/V
//!   are migrated into the KV-cache spaces after the stage;
//! * **non-expert weights** go wherever there is room (they are only
//!   touched by the xPU).

use crate::geometry::HbmGeometry;

/// Index of one of the four bank-bundle memory spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceIndex(pub u32);

impl SpaceIndex {
    /// The space reserved for prefill Q/K/V scratch.
    pub const PREFILL: SpaceIndex = SpaceIndex(3);

    /// The three spaces that hold decode KV cache.
    pub const KV_SPACES: [SpaceIndex; 3] = [SpaceIndex(0), SpaceIndex(1), SpaceIndex(2)];
}

impl std::fmt::Display for SpaceIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "space{}", self.0)
    }
}

/// What a region of device memory holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Weights used only by the xPU (QKV gen, projection, gates, LM head
    /// and, for non-MoE models, the dense FFN).
    SharedWeights,
    /// One expert FFN's weights.
    ExpertWeights {
        /// Decoder-layer index.
        layer: u32,
        /// Expert index within the layer.
        expert: u32,
    },
    /// KV cache of one request.
    KvCache {
        /// Serving-level request id.
        request: u64,
    },
    /// Q/K/V scratch for prefilling sequences.
    PrefillScratch,
}

/// A placed allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// What the region holds.
    pub kind: RegionKind,
    /// Size in bytes.
    pub bytes: u64,
    /// The memory space the region lives in.
    pub space: SpaceIndex,
}

/// Errors from memory planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPlanError {
    /// A space cannot fit the requested region.
    OutOfMemory {
        /// The space that overflowed.
        space: SpaceIndex,
        /// Bytes requested.
        requested: u64,
        /// Bytes still free in that space.
        available: u64,
    },
}

impl std::fmt::Display for MemoryPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryPlanError::OutOfMemory {
                space,
                requested,
                available,
            } => write!(
                f,
                "out of memory in {space}: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for MemoryPlanError {}

/// Byte-accounting allocator over the four memory spaces of one device.
///
/// # Examples
///
/// ```
/// use duplex_hbm::{HbmGeometry, MemoryLayout, RegionKind};
///
/// let mut layout = MemoryLayout::new(&HbmGeometry::hbm3_8hi(), 5);
/// // 80 GB device => 20 GB per space.
/// assert_eq!(layout.space_capacity(), 20 << 30);
/// let region = layout.alloc_expert(0, 0, 1 << 30)?;
/// assert_eq!(region.space.0, 0);
/// # Ok::<(), duplex_hbm::MemoryPlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLayout {
    space_capacity: u64,
    used: [u64; 4],
    regions: Vec<Region>,
    next_expert_space: u32,
    next_kv_space: u32,
}

impl MemoryLayout {
    /// Allocator for a device with `stacks` HBM stacks of `geom`.
    pub fn new(geom: &HbmGeometry, stacks: u32) -> Self {
        let device_bytes = geom.capacity_bytes * u64::from(stacks);
        Self {
            space_capacity: device_bytes / 4,
            used: [0; 4],
            regions: Vec::new(),
            next_expert_space: 0,
            next_kv_space: 0,
        }
    }

    /// Capacity of each memory space in bytes.
    pub fn space_capacity(&self) -> u64 {
        self.space_capacity
    }

    /// Total bytes used across all spaces.
    pub fn used_bytes(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Total bytes free across all spaces.
    pub fn free_bytes(&self) -> u64 {
        self.space_capacity * 4 - self.used_bytes()
    }

    /// Bytes free in one space.
    pub fn space_free(&self, space: SpaceIndex) -> u64 {
        self.space_capacity - self.used[space.0 as usize]
    }

    /// All placed regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    fn place(
        &mut self,
        kind: RegionKind,
        bytes: u64,
        space: SpaceIndex,
    ) -> Result<Region, MemoryPlanError> {
        let free = self.space_free(space);
        if bytes > free {
            return Err(MemoryPlanError::OutOfMemory {
                space,
                requested: bytes,
                available: free,
            });
        }
        self.used[space.0 as usize] += bytes;
        let region = Region { kind, bytes, space };
        self.regions.push(region);
        Ok(region)
    }

    /// Place one expert FFN's weights; experts round-robin across all
    /// four spaces.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryPlanError::OutOfMemory`] if the chosen space is
    /// full.
    pub fn alloc_expert(
        &mut self,
        layer: u32,
        expert: u32,
        bytes: u64,
    ) -> Result<Region, MemoryPlanError> {
        let space = SpaceIndex(self.next_expert_space);
        self.next_expert_space = (self.next_expert_space + 1) % 4;
        self.place(RegionKind::ExpertWeights { layer, expert }, bytes, space)
    }

    /// Place a request's KV cache; requests alternate among the three
    /// KV spaces.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryPlanError::OutOfMemory`] if the chosen space is
    /// full.
    pub fn alloc_kv(&mut self, request: u64, bytes: u64) -> Result<Region, MemoryPlanError> {
        let space = SpaceIndex::KV_SPACES[self.next_kv_space as usize];
        self.next_kv_space = (self.next_kv_space + 1) % SpaceIndex::KV_SPACES.len() as u32;
        self.place(RegionKind::KvCache { request }, bytes, space)
    }

    /// Place prefill Q/K/V scratch in the dedicated space.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryPlanError::OutOfMemory`] if the prefill space is
    /// full.
    pub fn alloc_prefill_scratch(&mut self, bytes: u64) -> Result<Region, MemoryPlanError> {
        self.place(RegionKind::PrefillScratch, bytes, SpaceIndex::PREFILL)
    }

    /// Place xPU-only weights in the least-used space.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryPlanError::OutOfMemory`] if even the least-used
    /// space cannot fit the region.
    pub fn alloc_shared(&mut self, bytes: u64) -> Result<Region, MemoryPlanError> {
        let space = SpaceIndex(
            (0..4u32)
                .min_by_key(|s| self.used[*s as usize])
                .expect("four spaces"),
        );
        self.place(RegionKind::SharedWeights, bytes, space)
    }

    /// Release every region that satisfies `predicate`, returning the
    /// number of bytes freed.
    pub fn free_where<F: FnMut(&Region) -> bool>(&mut self, mut predicate: F) -> u64 {
        let mut freed = 0;
        self.regions.retain(|r| {
            if predicate(r) {
                freed += r.bytes;
                false
            } else {
                true
            }
        });
        // Recompute per-space usage from surviving regions.
        let mut used = [0u64; 4];
        for r in &self.regions {
            used[r.space.0 as usize] += r.bytes;
        }
        self.used = used;
        freed
    }

    /// Release the KV cache of one request, returning bytes freed.
    pub fn free_kv(&mut self, request: u64) -> u64 {
        self.free_where(|r| matches!(r.kind, RegionKind::KvCache { request: rq } if rq == request))
    }

    /// Release all prefill scratch, returning bytes freed.
    pub fn free_prefill_scratch(&mut self) -> u64 {
        self.free_where(|r| matches!(r.kind, RegionKind::PrefillScratch))
    }

    /// The spaces currently holding expert weights, useful for checking
    /// that an expert-co-processing split keeps xPU and Logic-PIM on
    /// disjoint bundles.
    pub fn expert_spaces(&self) -> Vec<SpaceIndex> {
        let mut spaces: Vec<SpaceIndex> = self
            .regions
            .iter()
            .filter(|r| matches!(r.kind, RegionKind::ExpertWeights { .. }))
            .map(|r| r.space)
            .collect();
        spaces.sort();
        spaces.dedup();
        spaces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemoryLayout {
        MemoryLayout::new(&HbmGeometry::hbm3_8hi(), 5)
    }

    #[test]
    fn device_capacity_splits_into_four_spaces() {
        let l = layout();
        assert_eq!(l.space_capacity(), 20 << 30);
        assert_eq!(l.free_bytes(), 80 << 30);
    }

    #[test]
    fn experts_round_robin_across_spaces() {
        let mut l = layout();
        let spaces: Vec<u32> = (0..8)
            .map(|e| l.alloc_expert(0, e, 1 << 20).expect("fits").space.0)
            .collect();
        assert_eq!(spaces, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn kv_uses_only_three_spaces() {
        let mut l = layout();
        for r in 0..9 {
            let region = l.alloc_kv(r, 1 << 20).expect("fits");
            assert_ne!(region.space, SpaceIndex::PREFILL);
        }
        assert_eq!(l.space_free(SpaceIndex::PREFILL), l.space_capacity());
    }

    #[test]
    fn prefill_scratch_in_dedicated_space() {
        let mut l = layout();
        let r = l.alloc_prefill_scratch(1 << 20).expect("fits");
        assert_eq!(r.space, SpaceIndex::PREFILL);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut l = layout();
        let cap = l.space_capacity();
        l.alloc_prefill_scratch(cap).expect("exactly fits");
        let err = l.alloc_prefill_scratch(1).expect_err("full");
        match err {
            MemoryPlanError::OutOfMemory {
                space,
                requested,
                available,
            } => {
                assert_eq!(space, SpaceIndex::PREFILL);
                assert_eq!(requested, 1);
                assert_eq!(available, 0);
            }
        }
    }

    #[test]
    fn free_kv_restores_capacity() {
        let mut l = layout();
        let before = l.free_bytes();
        l.alloc_kv(7, 1 << 30).expect("fits");
        l.alloc_kv(8, 1 << 30).expect("fits");
        assert_eq!(l.free_bytes(), before - (2 << 30));
        let freed = l.free_kv(7);
        assert_eq!(freed, 1 << 30);
        assert_eq!(l.free_bytes(), before - (1 << 30));
    }

    #[test]
    fn shared_weights_balance_spaces() {
        let mut l = layout();
        l.alloc_expert(0, 0, 4 << 20).expect("fits"); // space0 heavier
        let r = l.alloc_shared(1 << 20).expect("fits");
        assert_ne!(r.space.0, 0, "least-used space should be chosen");
    }

    #[test]
    fn expert_spaces_deduplicated() {
        let mut l = layout();
        for e in 0..8 {
            l.alloc_expert(0, e, 1 << 20).expect("fits");
        }
        let spaces = l.expert_spaces();
        assert_eq!(spaces.len(), 4);
    }

    #[test]
    fn accounting_never_exceeds_capacity() {
        let mut l = layout();
        let mut total = 0u64;
        let mut req = 0u64;
        while let Ok(r) = l.alloc_kv(req, 3 << 30) {
            total += r.bytes;
            req += 1;
        }
        assert!(total <= 60 << 30, "KV confined to three spaces");
        assert!(l.used_bytes() <= 4 * l.space_capacity());
    }
}
