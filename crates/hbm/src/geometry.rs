//! Physical organization of an 8-hi HBM3 stack and the bank-bundle
//! grouping introduced by Logic-PIM.
//!
//! The paper (Sec. II-D) describes the stack we model: one logic die at
//! the bottom, eight DRAM dies above it. Four DRAM dies form a *rank*;
//! each die exposes eight *pseudo channels*; each pseudo channel is
//! connected to four bank groups of four banks, i.e. 16 banks per rank
//! visible to one pseudo channel.
//!
//! Logic-PIM (Sec. IV-C) splits those 16 banks into an upper and a lower
//! half of eight banks each — a *bank bundle* — which are read as one
//! unit over dedicated TSVs. With two ranks, each pseudo channel sees
//! four bundles (indices 0..4); the bundle index also names the *memory
//! space* used by the allocator in [`crate::alloc`].

/// Geometry of one HBM stack and its derived quantities.
///
/// All capacity quantities are in bytes. The default construction
/// [`HbmGeometry::hbm3_8hi`] matches the configuration the paper
/// evaluates: a 16 GB, 8-hi HBM3 stack as found on an H100 (five such
/// stacks per device, 80 GB total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HbmGeometry {
    /// DRAM dies per stack (8-hi => 8).
    pub dies: u32,
    /// Dies that form one rank (4 for HBM3).
    pub dies_per_rank: u32,
    /// Pseudo channels exposed by the whole stack (32 for HBM3).
    pub pseudo_channels: u32,
    /// Bank groups addressable by one pseudo channel within one rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Bytes delivered by one column access (burst) on a pseudo channel.
    pub burst_bytes: u64,
    /// Row (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Total stack capacity in bytes.
    pub capacity_bytes: u64,
    /// Banks ganged together into one Logic-PIM bank bundle.
    pub banks_per_bundle: u32,
}

impl HbmGeometry {
    /// The 16 GB 8-hi HBM3 stack used throughout the paper's evaluation.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = duplex_hbm::HbmGeometry::hbm3_8hi();
    /// assert_eq!(g.ranks(), 2);
    /// assert_eq!(g.bundles_per_pseudo_channel(), 4);
    /// assert_eq!(g.capacity_bytes, 16 << 30);
    /// ```
    pub fn hbm3_8hi() -> Self {
        Self {
            dies: 8,
            dies_per_rank: 4,
            pseudo_channels: 32,
            bank_groups: 4,
            banks_per_group: 4,
            burst_bytes: 32,
            row_bytes: 1024,
            capacity_bytes: 16 << 30,
            banks_per_bundle: 8,
        }
    }

    /// Number of ranks in the stack.
    pub fn ranks(&self) -> u32 {
        self.dies / self.dies_per_rank
    }

    /// Banks seen by one pseudo channel within one rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Banks seen by one pseudo channel across all ranks.
    pub fn banks_per_pseudo_channel(&self) -> u32 {
        self.banks_per_rank() * self.ranks()
    }

    /// Bank bundles per rank as seen from one pseudo channel
    /// (16 banks / 8 banks per bundle = 2 for HBM3).
    pub fn bundles_per_rank(&self) -> u32 {
        self.banks_per_rank() / self.banks_per_bundle
    }

    /// Bank bundles per pseudo channel across ranks (4 for HBM3; these
    /// four indices are the four *memory spaces* of Sec. V-C).
    pub fn bundles_per_pseudo_channel(&self) -> u32 {
        self.bundles_per_rank() * self.ranks()
    }

    /// Capacity governed by a single pseudo channel, in bytes.
    pub fn bytes_per_pseudo_channel(&self) -> u64 {
        self.capacity_bytes / u64::from(self.pseudo_channels)
    }

    /// Capacity of one bank, in bytes.
    pub fn bytes_per_bank(&self) -> u64 {
        self.bytes_per_pseudo_channel() / u64::from(self.banks_per_pseudo_channel())
    }

    /// Capacity of one bank-bundle-indexed memory space across the whole
    /// stack, in bytes (stack capacity / 4 for HBM3).
    pub fn bytes_per_space(&self) -> u64 {
        self.capacity_bytes / u64::from(self.bundles_per_pseudo_channel())
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.bytes_per_bank() / self.row_bytes
    }

    /// Column accesses needed to drain one open row.
    pub fn reads_per_row(&self) -> u64 {
        self.row_bytes / self.burst_bytes
    }
}

/// Identifies one bank bundle within a stack.
///
/// `space` is the bundle index 0..[`HbmGeometry::bundles_per_pseudo_channel`]
/// shared by all pseudo channels; the paper uses this index to carve the
/// device memory into four co-processing-safe spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankBundle {
    /// Pseudo-channel index within the stack.
    pub pseudo_channel: u32,
    /// Bundle (memory-space) index within the pseudo channel.
    pub space: u32,
}

impl BankBundle {
    /// Rank that hosts this bundle (two bundles per rank for HBM3).
    pub fn rank(&self, geom: &HbmGeometry) -> u32 {
        self.space / geom.bundles_per_rank()
    }

    /// Whether two bundles can be accessed concurrently without a bank
    /// conflict. Bundles conflict only when they are the *same* bundle
    /// of the same pseudo channel; different spaces never conflict,
    /// which is what lets xPU and Logic-PIM run simultaneously
    /// (Sec. IV-C: "a simple switch separates it from the Logic-PIM
    /// datapath").
    pub fn conflicts_with(&self, other: &BankBundle) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm3_defaults_are_consistent() {
        let g = HbmGeometry::hbm3_8hi();
        assert_eq!(g.ranks(), 2);
        assert_eq!(g.banks_per_rank(), 16);
        assert_eq!(g.banks_per_pseudo_channel(), 32);
        assert_eq!(g.bundles_per_rank(), 2);
        assert_eq!(g.bundles_per_pseudo_channel(), 4);
    }

    #[test]
    fn capacity_partitions_exactly() {
        let g = HbmGeometry::hbm3_8hi();
        assert_eq!(
            g.bytes_per_pseudo_channel() * u64::from(g.pseudo_channels),
            g.capacity_bytes
        );
        assert_eq!(
            g.bytes_per_space() * u64::from(g.bundles_per_pseudo_channel()),
            g.capacity_bytes
        );
        // 16 GB / 32 pCH / 32 banks = 16 MB per bank.
        assert_eq!(g.bytes_per_bank(), 16 << 20);
    }

    #[test]
    fn row_math() {
        let g = HbmGeometry::hbm3_8hi();
        assert_eq!(g.reads_per_row(), 32);
        assert_eq!(g.rows_per_bank(), (16 << 20) / 1024);
    }

    #[test]
    fn bundle_conflicts() {
        let a = BankBundle {
            pseudo_channel: 0,
            space: 1,
        };
        let b = BankBundle {
            pseudo_channel: 0,
            space: 2,
        };
        let c = BankBundle {
            pseudo_channel: 1,
            space: 1,
        };
        assert!(a.conflicts_with(&a));
        assert!(!a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn bundle_rank_mapping() {
        let g = HbmGeometry::hbm3_8hi();
        let spaces: Vec<u32> = (0..g.bundles_per_pseudo_channel())
            .map(|s| {
                BankBundle {
                    pseudo_channel: 0,
                    space: s,
                }
                .rank(&g)
            })
            .collect();
        assert_eq!(spaces, vec![0, 0, 1, 1]);
    }
}
