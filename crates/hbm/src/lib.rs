//! HBM3 memory model for the Duplex simulator.
//!
//! This crate is the analogue of the Ramulator backend used by the paper
//! *"Duplex: A Device for Large Language Models with Mixture of Experts,
//! Grouped Query Attention, and Continuous Batching"* (MICRO 2024). It
//! provides everything the higher layers need to reason about off-chip
//! memory:
//!
//! * [`geometry`] — the physical organization of an 8-hi HBM3 stack
//!   (ranks, pseudo channels, bank groups, banks, rows) and the
//!   *bank bundle* grouping that Logic-PIM introduces (Sec. IV-C of the
//!   paper).
//! * [`timing`] — JEDEC-style timing parameters (`tCCD_S`, `tCCD_L`,
//!   `tRCD`, `tRP`, ...) for HBM3.
//! * [`stream`] — a command-level streaming engine that plays out
//!   ACT/RD/PRE sequences under those timing constraints and reports the
//!   *sustained* bandwidth and activation count of each access path
//!   (xPU via the interposer, Logic-PIM via the added TSVs, Bank-PIM
//!   in-bank, BankGroup-PIM per bank group).
//! * [`alloc`] — the four bank-bundle-indexed memory spaces of Sec. V-C
//!   and the placement rules for expert weights, KV cache and prefill
//!   scratch that make expert/attention co-processing conflict-free.
//! * [`energy`] — per-access DRAM energy (activation, array read, on-die
//!   datapath, TSV, interposer I/O) following the fine-grained DRAM
//!   energy breakdown of O'Connor et al. (MICRO 2017), which the paper
//!   also uses.
//!
//! # Example
//!
//! Compare the sustained bandwidth of the conventional xPU path with the
//! Logic-PIM bank-bundle path on one pseudo channel:
//!
//! ```
//! use duplex_hbm::{geometry::HbmGeometry, timing::HbmTiming, stream::AccessPath};
//! use duplex_hbm::stream::BandwidthProfile;
//!
//! let geom = HbmGeometry::hbm3_8hi();
//! let timing = HbmTiming::hbm3();
//! let profile = BandwidthProfile::calibrate(&geom, &timing);
//! let xpu = profile.sustained_gbps(AccessPath::Xpu);
//! let pim = profile.sustained_gbps(AccessPath::LogicPim);
//! // 4x peak; sustained lands a bit above 3x after lockstep row turnaround.
//! assert!(pim > 2.9 * xpu, "Logic-PIM should deliver ~4x the xPU path");
//! ```

pub mod alloc;
pub mod energy;
pub mod geometry;
pub mod stream;
pub mod timing;

pub use alloc::{MemoryLayout, MemoryPlanError, Region, RegionKind, SpaceIndex};
pub use energy::{DramEnergy, DramEnergyModel, EnergyBreakdown};
pub use geometry::{BankBundle, HbmGeometry};
pub use stream::{AccessPath, BandwidthProfile, StreamResult};
pub use timing::HbmTiming;
