//! DRAM access energy model.
//!
//! The paper takes DRAM activation/read/write/TSV energy from O'Connor
//! et al., *Fine-Grained DRAM* (MICRO 2017) — reference \[37\]. We encode
//! that breakdown as per-bit (and per-activation) constants and charge
//! each access path only for the pipeline segments it actually
//! traverses:
//!
//! | segment              | xPU | Logic-PIM | BankGroup-PIM | Bank-PIM |
//! |----------------------|-----|-----------|---------------|----------|
//! | row activation       |  x  |     x     |       x       |    x     |
//! | array read           |  x  |     x     |       x       |    x     |
//! | on-die datapath      |  x  |     x     |       x       | (short)  |
//! | TSV to logic die     |  x  |     x     |               |          |
//! | PHY + interposer I/O |  x  |           |               |          |
//!
//! Skipping the interposer hop is where Duplex's DRAM-energy saving
//! comes from (Sec. VII-D); Bank-PIM additionally skips the TSVs and
//! most of the on-die datapath, and BankGroup-PIM stops at the bank
//! group, which is why it is the cheapest *per bit* despite being the
//! worst EDAP choice once area enters the picture (Fig. 8).

use crate::stream::AccessPath;

/// Energy constants in picojoules. Values follow the HBM breakdown of
/// O'Connor et al. (MICRO 2017) scaled to HBM3 supply/process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergy {
    /// Energy of one row activation (1 KB row), in picojoules.
    pub activation_pj: f64,
    /// DRAM array read (bitline + sense amp) energy, pJ/bit.
    pub array_read_pj_per_bit: f64,
    /// On-die datapath from bank I/O to the TSV region, pJ/bit.
    pub datapath_pj_per_bit: f64,
    /// Short local datapath from a bank into its in-bank PU, pJ/bit.
    pub local_datapath_pj_per_bit: f64,
    /// TSV traversal to the logic die, pJ/bit.
    pub tsv_pj_per_bit: f64,
    /// PHY + interposer I/O to the main compute die, pJ/bit.
    pub io_pj_per_bit: f64,
    /// Write premium relative to read (fraction, e.g. 0.1 = +10%).
    pub write_premium: f64,
}

impl DramEnergy {
    /// HBM3 constants used throughout the evaluation.
    ///
    /// The xPU total comes to ~4.3 pJ/bit (plus activation), in line
    /// with published HBM access energies of 3.9–7 pJ/bit; the
    /// Logic-PIM path saves the ~1.3 pJ/bit interposer hop.
    pub fn hbm3() -> Self {
        Self {
            activation_pj: 1000.0,
            array_read_pj_per_bit: 1.1,
            datapath_pj_per_bit: 0.6,
            local_datapath_pj_per_bit: 0.15,
            tsv_pj_per_bit: 0.35,
            io_pj_per_bit: 1.3,
            write_premium: 0.1,
        }
    }

    /// Per-bit transfer energy (excluding activation) for a path, pJ.
    pub fn transfer_pj_per_bit(&self, path: AccessPath) -> f64 {
        match path {
            AccessPath::Xpu => {
                self.array_read_pj_per_bit
                    + self.datapath_pj_per_bit
                    + self.tsv_pj_per_bit
                    + self.io_pj_per_bit
            }
            AccessPath::LogicPim => {
                self.array_read_pj_per_bit + self.datapath_pj_per_bit + self.tsv_pj_per_bit
            }
            AccessPath::BankGroupPim => self.array_read_pj_per_bit + self.datapath_pj_per_bit,
            AccessPath::BankPim => self.array_read_pj_per_bit + self.local_datapath_pj_per_bit,
        }
    }
}

impl Default for DramEnergy {
    fn default() -> Self {
        Self::hbm3()
    }
}

/// Itemized DRAM energy for one transfer, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Row-activation energy (J).
    pub activation_j: f64,
    /// Array + datapath + TSV + I/O transfer energy (J).
    pub transfer_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.activation_j + self.transfer_j
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            activation_j: self.activation_j + rhs.activation_j,
            transfer_j: self.transfer_j + rhs.transfer_j,
        }
    }
}

impl std::ops::AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// Computes DRAM energy for transfers over a given path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DramEnergyModel {
    constants: DramEnergy,
}

impl DramEnergyModel {
    /// Model with the given constants.
    pub fn new(constants: DramEnergy) -> Self {
        Self { constants }
    }

    /// The constants in use.
    pub fn constants(&self) -> &DramEnergy {
        &self.constants
    }

    /// Energy to read `bytes` over `path`, given `activations_per_byte`
    /// from the calibrated [`crate::stream::BandwidthProfile`].
    pub fn read_energy(
        &self,
        path: AccessPath,
        bytes: u64,
        activations_per_byte: f64,
    ) -> EnergyBreakdown {
        let bits = bytes as f64 * 8.0;
        EnergyBreakdown {
            activation_j: bytes as f64
                * activations_per_byte
                * self.constants.activation_pj
                * 1e-12,
            transfer_j: bits * self.constants.transfer_pj_per_bit(path) * 1e-12,
        }
    }

    /// Energy to write `bytes` over `path` (reads plus the write
    /// premium).
    pub fn write_energy(
        &self,
        path: AccessPath,
        bytes: u64,
        activations_per_byte: f64,
    ) -> EnergyBreakdown {
        let read = self.read_energy(path, bytes, activations_per_byte);
        EnergyBreakdown {
            activation_j: read.activation_j,
            transfer_j: read.transfer_j * (1.0 + self.constants.write_premium),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_energy_ordering() {
        let e = DramEnergy::hbm3();
        let xpu = e.transfer_pj_per_bit(AccessPath::Xpu);
        let lpim = e.transfer_pj_per_bit(AccessPath::LogicPim);
        let bgpim = e.transfer_pj_per_bit(AccessPath::BankGroupPim);
        let bpim = e.transfer_pj_per_bit(AccessPath::BankPim);
        assert!(xpu > lpim, "interposer hop must cost energy");
        assert!(lpim > bgpim, "TSV hop must cost energy");
        assert!(bgpim > bpim, "full datapath beats local datapath");
    }

    #[test]
    fn logic_pim_saves_about_30_percent() {
        let e = DramEnergy::hbm3();
        let saving = 1.0
            - e.transfer_pj_per_bit(AccessPath::LogicPim) / e.transfer_pj_per_bit(AccessPath::Xpu);
        assert!(saving > 0.25 && saving < 0.45, "got {saving}");
    }

    #[test]
    fn read_energy_scales_linearly() {
        let m = DramEnergyModel::default();
        let one = m.read_energy(AccessPath::Xpu, 1 << 20, 1.0 / 1024.0);
        let four = m.read_energy(AccessPath::Xpu, 4 << 20, 1.0 / 1024.0);
        assert!((four.total_j() / one.total_j() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn write_costs_more_than_read() {
        let m = DramEnergyModel::default();
        let r = m.read_energy(AccessPath::Xpu, 1 << 20, 1.0 / 1024.0);
        let w = m.write_energy(AccessPath::Xpu, 1 << 20, 1.0 / 1024.0);
        assert!(w.total_j() > r.total_j());
    }

    #[test]
    fn breakdown_adds() {
        let a = EnergyBreakdown {
            activation_j: 1.0,
            transfer_j: 2.0,
        };
        let b = EnergyBreakdown {
            activation_j: 0.5,
            transfer_j: 0.25,
        };
        let c = a + b;
        assert_eq!(c.activation_j, 1.5);
        assert_eq!(c.transfer_j, 2.25);
        assert_eq!(c.total_j(), 3.75);
    }

    #[test]
    fn plausible_absolute_magnitude() {
        // Reading 1 GB over the xPU path should cost on the order of a
        // few joules-per-TB-ish: 4.3 pJ/bit * 8 Gbit ~ 37 mJ.
        let m = DramEnergyModel::default();
        let e = m.read_energy(AccessPath::Xpu, 1 << 30, 1.0 / 1024.0);
        assert!(
            e.total_j() > 0.02 && e.total_j() < 0.08,
            "got {}",
            e.total_j()
        );
    }
}
