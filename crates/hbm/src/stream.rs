//! Command-level streaming engine.
//!
//! The figures in the paper all hinge on the *sustained* bandwidth each
//! access path can extract from the same DRAM dies:
//!
//! * the **xPU path** — conventional pseudo-channel reads through the
//!   interposer: one 32 B burst per `tCCD_S`, banks interleaved so row
//!   turnaround (tRP + tRCD) hides behind other banks' drains;
//! * the **Logic-PIM path** — ganged *bank bundle* reads over the added
//!   TSVs: eight banks deliver 256 B per `tCCD_L` (4x the xPU peak), but
//!   the eight banks drain their rows in lockstep so each row set pays
//!   the turnaround;
//! * the **BankGroup-PIM path** — identical bandwidth to Logic-PIM (the
//!   processing units merely sit on the DRAM die, which costs area and
//!   energy, not bandwidth);
//! * the **Bank-PIM path** — per-bank readout into in-bank processing
//!   units (16x the conventional peak, as assumed in Sec. VI), limited
//!   by per-bank row cycling.
//!
//! [`simulate_stream`] plays out the ACT/RD/PRE command sequence for one
//! pseudo channel under [`crate::timing::HbmTiming`] and reports elapsed
//! time and activation counts. [`BandwidthProfile`] calibrates the
//! sustained GB/s of every path once and is then consulted analytically
//! by the layer-timing code (simulating every byte of a 47 B-parameter
//! model per stage would be needlessly slow and adds nothing: streaming
//! is steady-state by construction).

use crate::geometry::HbmGeometry;
use crate::timing::HbmTiming;

/// Which engine is pulling data out of the DRAM dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Conventional reads through the HBM PHY and interposer to the xPU.
    Xpu,
    /// Ganged bank-bundle reads over dedicated TSVs to the logic die.
    LogicPim,
    /// Same datapath width as [`AccessPath::LogicPim`] but with the
    /// processing units on the DRAM die (the BankGroup-PIM baseline of
    /// Fig. 8).
    BankGroupPim,
    /// In-bank processing units reading their own bank (the Bank-PIM
    /// baseline of Sec. VI, 16x conventional peak bandwidth).
    BankPim,
}

impl AccessPath {
    /// All modelled paths, in presentation order.
    pub const ALL: [AccessPath; 4] = [
        AccessPath::Xpu,
        AccessPath::LogicPim,
        AccessPath::BankGroupPim,
        AccessPath::BankPim,
    ];

    /// Peak (zero-stall) bandwidth multiple relative to the conventional
    /// pseudo-channel peak, as stated in the paper.
    pub fn peak_multiple(&self) -> f64 {
        match self {
            AccessPath::Xpu => 1.0,
            AccessPath::LogicPim | AccessPath::BankGroupPim => 4.0,
            AccessPath::BankPim => 16.0,
        }
    }
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AccessPath::Xpu => "xPU",
            AccessPath::LogicPim => "Logic-PIM",
            AccessPath::BankGroupPim => "BankGroup-PIM",
            AccessPath::BankPim => "Bank-PIM",
        };
        f.write_str(name)
    }
}

/// Outcome of streaming a contiguous region through one pseudo channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// Bytes transferred.
    pub bytes: u64,
    /// Wall-clock nanoseconds from first command to last data beat.
    pub elapsed_ns: f64,
    /// Row activations issued (drives activation energy).
    pub activations: u64,
    /// Column read commands issued.
    pub reads: u64,
}

impl StreamResult {
    /// Sustained bandwidth in GB/s (bytes per nanosecond).
    pub fn sustained_gbps(&self) -> f64 {
        self.bytes as f64 / self.elapsed_ns
    }
}

/// Simulate streaming `bytes` of sequential data through one pseudo
/// channel over the given access path.
///
/// The address layout is the streaming-friendly one the allocator in
/// [`crate::alloc`] produces: consecutive cache lines interleave across
/// bank groups (xPU) or across the banks of one bundle (PIM paths), and
/// fill whole rows before moving on.
///
/// # Panics
///
/// Panics if `bytes` is zero.
pub fn simulate_stream(
    geom: &HbmGeometry,
    timing: &HbmTiming,
    path: AccessPath,
    bytes: u64,
) -> StreamResult {
    assert!(bytes > 0, "cannot stream zero bytes");
    match path {
        AccessPath::Xpu => simulate_xpu(geom, timing, bytes),
        AccessPath::LogicPim | AccessPath::BankGroupPim => simulate_bundle(geom, timing, bytes),
        AccessPath::BankPim => simulate_bank_pim(geom, timing, bytes),
    }
}

/// Conventional pseudo-channel streaming: one burst per `tCCD_S`,
/// rotating across bank groups, with per-bank row management.
fn simulate_xpu(geom: &HbmGeometry, timing: &HbmTiming, bytes: u64) -> StreamResult {
    let n_banks = geom.banks_per_pseudo_channel() as usize;
    let n_groups = geom.bank_groups as usize;
    let reads_per_row = geom.reads_per_row();
    let total_reads = bytes.div_ceil(geom.burst_bytes);

    // Per-bank state.
    #[derive(Clone, Copy)]
    struct Bank {
        /// Time the open row becomes readable.
        ready_at: f64,
        /// Reads left in the open row (0 = closed).
        row_reads_left: u64,
        /// Time of the ACT that opened the current row (for tRAS).
        act_at: f64,
    }
    let mut banks = vec![
        Bank {
            ready_at: 0.0,
            row_reads_left: 0,
            act_at: f64::NEG_INFINITY
        };
        n_banks
    ];
    let mut last_col_any = f64::NEG_INFINITY;
    let mut last_col_group = vec![f64::NEG_INFINITY; n_groups];
    let mut last_act_any = f64::NEG_INFINITY;
    let mut faw: std::collections::VecDeque<f64> = std::collections::VecDeque::new();

    let mut activations = 0u64;
    let mut finish = 0.0f64;

    for read in 0..total_reads {
        // Consecutive bursts rotate across bank groups first (so the bus
        // only ever sees tCCD_S between adjacent commands), then across
        // the banks within a group.
        let bank_idx = (read as usize) % n_banks;
        let group = bank_idx % n_groups;
        let bank = &mut banks[bank_idx];

        if bank.row_reads_left == 0 {
            // PRE (respect tRAS) + ACT (respect tRRD / tFAW).
            let pre_at = (bank.act_at + timing.tras).max(bank.ready_at);
            let mut act_at = (pre_at + timing.trp).max(last_act_any + timing.trrd_s);
            while faw.len() >= 4 {
                let oldest = *faw.front().expect("faw non-empty");
                if act_at < oldest + timing.tfaw {
                    act_at = oldest + timing.tfaw;
                }
                faw.pop_front();
            }
            faw.push_back(act_at);
            last_act_any = act_at;
            bank.act_at = act_at;
            bank.ready_at = act_at + timing.trcd;
            bank.row_reads_left = reads_per_row;
            activations += 1;
        }

        let issue = bank
            .ready_at
            .max(last_col_any + timing.tccd_s)
            .max(last_col_group[group] + timing.tccd_l);
        last_col_any = issue;
        last_col_group[group] = issue;
        bank.ready_at = issue;
        bank.row_reads_left -= 1;
        finish = issue + timing.tccd_s; // data beat occupies one slot
    }

    StreamResult {
        bytes,
        elapsed_ns: finish,
        activations,
        reads: total_reads,
    }
}

/// Ganged bank-bundle streaming for Logic-PIM / BankGroup-PIM: the eight
/// banks of a bundle deliver `8 * burst_bytes` per `tCCD_L` over their
/// separated I/O paths; rows open and close in lockstep, so every
/// row-set drain pays one tRP + tRCD turnaround.
fn simulate_bundle(geom: &HbmGeometry, timing: &HbmTiming, bytes: u64) -> StreamResult {
    let gang = u64::from(geom.banks_per_bundle);
    let gang_bytes = gang * geom.burst_bytes;
    let reads_per_row = geom.reads_per_row();
    let total_gang_reads = bytes.div_ceil(gang_bytes);

    let mut t = 0.0f64;
    let mut activations = 0u64;
    let mut reads_left_in_rowset = 0u64;
    let mut issued = 0u64;
    let mut act_at = f64::NEG_INFINITY;

    while issued < total_gang_reads {
        if reads_left_in_rowset == 0 {
            // Close the previous row set (after tRAS) and open the next
            // in all eight banks simultaneously.
            let pre_at = (act_at + timing.tras).max(t);
            let new_act = pre_at + timing.trp;
            t = new_act + timing.trcd;
            act_at = new_act;
            activations += gang;
            reads_left_in_rowset = reads_per_row;
        }
        t += timing.tccd_l;
        reads_left_in_rowset -= 1;
        issued += 1;
    }

    StreamResult {
        bytes,
        elapsed_ns: t,
        activations,
        reads: issued * gang,
    }
}

/// Bank-PIM streaming: every bank of the pseudo channel feeds its own
/// in-bank processing unit at one burst per `tCCD_L` (the in-bank column
/// cycle), cycling its rows independently (drain, then tRP + tRCD, with
/// tRAS respected). With 32 banks per pseudo channel this gives the
/// paper's assumed 16x conventional peak bandwidth.
fn simulate_bank_pim(geom: &HbmGeometry, timing: &HbmTiming, bytes: u64) -> StreamResult {
    // All banks behave identically and independently; simulate one bank
    // streaming its slice and scale the byte count.
    let n_banks = u64::from(geom.banks_per_pseudo_channel());
    let per_bank = bytes.div_ceil(n_banks).max(1);
    let reads_per_row = geom.reads_per_row();
    let total_reads = per_bank.div_ceil(geom.burst_bytes);

    let mut t = 0.0f64;
    let mut activations = 0u64;
    let mut reads_left = 0u64;
    let mut act_at = f64::NEG_INFINITY;
    let mut issued = 0u64;
    while issued < total_reads {
        if reads_left == 0 {
            let pre_at = (act_at + timing.tras).max(t);
            let new_act = pre_at + timing.trp;
            t = new_act + timing.trcd;
            act_at = new_act;
            activations += 1;
            reads_left = reads_per_row;
        }
        t += timing.tccd_l;
        reads_left -= 1;
        issued += 1;
    }

    StreamResult {
        bytes,
        elapsed_ns: t,
        activations: activations * n_banks,
        reads: total_reads * n_banks,
    }
}

/// Calibrated sustained bandwidth of every access path on one pseudo
/// channel, plus activation-rate statistics for the energy model.
///
/// Calibration streams a multi-megabyte region once per path; results
/// are steady-state by construction, so downstream timing can use
/// `bytes / sustained` without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthProfile {
    geom: HbmGeometry,
    sustained_gbps: [f64; 4],
    activations_per_byte: [f64; 4],
}

impl BandwidthProfile {
    /// Number of bytes streamed per path during calibration. Large
    /// enough that start-up transients are <0.1% of the run.
    const CALIBRATION_BYTES: u64 = 8 << 20;

    /// Run the command-level engine once per access path and record the
    /// sustained bandwidth.
    pub fn calibrate(geom: &HbmGeometry, timing: &HbmTiming) -> Self {
        let mut sustained = [0.0f64; 4];
        let mut acts = [0.0f64; 4];
        for (i, path) in AccessPath::ALL.iter().enumerate() {
            let r = simulate_stream(geom, timing, *path, Self::CALIBRATION_BYTES);
            sustained[i] = r.sustained_gbps();
            acts[i] = r.activations as f64 / r.bytes as f64;
        }
        Self {
            geom: *geom,
            sustained_gbps: sustained,
            activations_per_byte: acts,
        }
    }

    fn index(path: AccessPath) -> usize {
        AccessPath::ALL
            .iter()
            .position(|p| *p == path)
            .expect("path present in ALL")
    }

    /// Sustained GB/s on one pseudo channel for `path`.
    pub fn sustained_gbps(&self, path: AccessPath) -> f64 {
        self.sustained_gbps[Self::index(path)]
    }

    /// Sustained bytes/second for a whole device with `stacks` HBM
    /// stacks, all pseudo channels streaming.
    pub fn device_bytes_per_sec(&self, path: AccessPath, stacks: u32) -> f64 {
        self.sustained_gbps(path) * f64::from(self.geom.pseudo_channels) * f64::from(stacks) * 1e9
    }

    /// Row activations per byte streamed (for activation energy).
    pub fn activations_per_byte(&self, path: AccessPath) -> f64 {
        self.activations_per_byte[Self::index(path)]
    }

    /// Time in seconds to stream `bytes` through a device with `stacks`
    /// stacks over `path`, assuming all pseudo channels participate.
    pub fn stream_seconds(&self, path: AccessPath, stacks: u32, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.device_bytes_per_sec(path, stacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> BandwidthProfile {
        BandwidthProfile::calibrate(&HbmGeometry::hbm3_8hi(), &HbmTiming::hbm3())
    }

    #[test]
    fn xpu_sustains_near_peak() {
        let p = profile();
        let peak = HbmTiming::hbm3().peak_pseudo_channel_gbps(32);
        let sustained = p.sustained_gbps(AccessPath::Xpu);
        assert!(
            sustained > 0.95 * peak,
            "xPU path should hide row turnaround behind 32 interleaved banks: {sustained} vs peak {peak}"
        );
        assert!(sustained <= peak * 1.001);
    }

    #[test]
    fn logic_pim_beats_xpu_by_about_4x_peak() {
        let p = profile();
        let ratio = p.sustained_gbps(AccessPath::LogicPim) / p.sustained_gbps(AccessPath::Xpu);
        // Peak is exactly 4x; lockstep row turnaround costs the bundle
        // path ~23%, so sustained lands a little above 3x.
        assert!(ratio > 2.9 && ratio < 4.0, "got ratio {ratio}");
    }

    #[test]
    fn bank_group_pim_matches_logic_pim_bandwidth() {
        let p = profile();
        assert!(
            (p.sustained_gbps(AccessPath::BankGroupPim) - p.sustained_gbps(AccessPath::LogicPim))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn bank_pim_has_highest_bandwidth() {
        let p = profile();
        let bank = p.sustained_gbps(AccessPath::BankPim);
        let logic = p.sustained_gbps(AccessPath::LogicPim);
        let xpu = p.sustained_gbps(AccessPath::Xpu);
        assert!(bank > 2.5 * logic, "bank {bank} vs logic {logic}");
        assert!(bank > 9.0 * xpu, "bank {bank} vs xpu {xpu}");
    }

    #[test]
    fn h100_class_device_bandwidth() {
        let p = profile();
        let dev = p.device_bytes_per_sec(AccessPath::Xpu, 5);
        // 5 stacks of HBM3 => ~3.35 TB/s on an H100.
        assert!(dev > 3.0e12 && dev < 3.6e12, "got {dev}");
    }

    #[test]
    fn stream_seconds_scales_linearly() {
        let p = profile();
        let one = p.stream_seconds(AccessPath::Xpu, 5, 1 << 30);
        let two = p.stream_seconds(AccessPath::Xpu, 5, 2 << 30);
        assert!((two / one - 2.0).abs() < 1e-9);
        assert_eq!(p.stream_seconds(AccessPath::Xpu, 5, 0), 0.0);
    }

    #[test]
    fn activation_counts_match_row_math() {
        let geom = HbmGeometry::hbm3_8hi();
        let timing = HbmTiming::hbm3();
        let bytes = 1 << 20; // 1 MiB
        let r = simulate_stream(&geom, &timing, AccessPath::Xpu, bytes);
        // One activation per 1 KB row.
        assert_eq!(r.activations, bytes / geom.row_bytes);
        let rb = simulate_stream(&geom, &timing, AccessPath::LogicPim, bytes);
        assert_eq!(rb.activations, bytes / geom.row_bytes);
    }

    #[test]
    fn tiny_streams_work() {
        let geom = HbmGeometry::hbm3_8hi();
        let timing = HbmTiming::hbm3();
        for path in AccessPath::ALL {
            let r = simulate_stream(&geom, &timing, path, 8);
            assert!(r.elapsed_ns > 0.0);
            assert!(r.activations >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_byte_stream_panics() {
        let geom = HbmGeometry::hbm3_8hi();
        simulate_stream(&geom, &HbmTiming::hbm3(), AccessPath::Xpu, 0);
    }

    #[test]
    fn elapsed_monotonic_in_bytes() {
        let geom = HbmGeometry::hbm3_8hi();
        let timing = HbmTiming::hbm3();
        for path in AccessPath::ALL {
            let mut prev = 0.0;
            for kb in [1u64, 4, 16, 64, 256] {
                let r = simulate_stream(&geom, &timing, path, kb << 10);
                assert!(r.elapsed_ns > prev, "{path}: not monotonic");
                prev = r.elapsed_ns;
            }
        }
    }
}
