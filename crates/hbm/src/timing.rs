//! HBM3 timing parameters.
//!
//! All values are in nanoseconds. The two parameters the paper leans on
//! are `tCCD_S` (column-to-column delay across bank groups, 1.5 ns for
//! HBM3, Sec. VI) and `tCCD_L` (same bank group, "twice as long",
//! Sec. IV-C); the remainder are representative JEDEC HBM3 values used
//! to play out activate/precharge scheduling in [`crate::stream`].

/// DRAM timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmTiming {
    /// Column-to-column delay, different bank groups (ns).
    pub tccd_s: f64,
    /// Column-to-column delay, same bank group (ns).
    pub tccd_l: f64,
    /// Activate-to-read delay (ns).
    pub trcd: f64,
    /// Precharge period (ns).
    pub trp: f64,
    /// Minimum row-open time (ns).
    pub tras: f64,
    /// Activate-to-activate, different bank groups (ns).
    pub trrd_s: f64,
    /// Activate-to-activate, same bank group (ns).
    pub trrd_l: f64,
    /// Four-activate window (ns).
    pub tfaw: f64,
}

impl HbmTiming {
    /// HBM3 timing as used in the paper's evaluation (JEDEC HBM3 \[21\],
    /// with `tCCD_S` = 1.5 ns called out explicitly in Sec. VI).
    ///
    /// # Examples
    ///
    /// ```
    /// let t = duplex_hbm::HbmTiming::hbm3();
    /// assert_eq!(t.tccd_s, 1.5);
    /// assert_eq!(t.tccd_l, 2.0 * t.tccd_s);
    /// ```
    pub fn hbm3() -> Self {
        Self {
            tccd_s: 1.5,
            tccd_l: 3.0,
            trcd: 14.0,
            trp: 14.0,
            tras: 33.0,
            trrd_s: 4.0,
            trrd_l: 6.0,
            tfaw: 16.0,
        }
    }

    /// Peak pseudo-channel bandwidth implied by the column cadence:
    /// one burst of `burst_bytes` every `tCCD_S`, in GB/s.
    ///
    /// For HBM3 (32 B / 1.5 ns) this is ~21.3 GB/s, i.e. ~683 GB/s per
    /// 32-pseudo-channel stack — the stack bandwidth of an H100-class
    /// device (5 stacks ≈ 3.35 TB/s).
    pub fn peak_pseudo_channel_gbps(&self, burst_bytes: u64) -> f64 {
        burst_bytes as f64 / self.tccd_s
    }

    /// Minimum time to cycle one bank through PRE + ACT before it can be
    /// read again (ns). Used to check that bank interleaving hides row
    /// turnaround during streaming.
    pub fn row_turnaround(&self) -> f64 {
        self.trp + self.trcd
    }
}

impl Default for HbmTiming {
    fn default() -> Self {
        Self::hbm3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm3_peak_bandwidth_matches_h100_stack() {
        let t = HbmTiming::hbm3();
        let per_pch = t.peak_pseudo_channel_gbps(32);
        let per_stack = per_pch * 32.0;
        // ~683 GB/s per stack; 5 stacks ≈ 3.4 TB/s (H100 is 3.35 TB/s).
        assert!((per_stack - 682.6).abs() < 1.0, "got {per_stack}");
    }

    #[test]
    fn tccd_l_is_twice_tccd_s() {
        let t = HbmTiming::hbm3();
        assert!((t.tccd_l - 2.0 * t.tccd_s).abs() < 1e-12);
    }

    #[test]
    fn row_turnaround_hidden_by_one_row_drain() {
        let t = HbmTiming::hbm3();
        // Draining one 1 KB row takes 32 reads x 1.5 ns = 48 ns, which
        // exceeds tRP + tRCD = 28 ns: interleaved banks can hide
        // turnaround, so streaming sustains near peak. The stream engine
        // test verifies this end to end.
        assert!(32.0 * t.tccd_s > t.row_turnaround());
    }
}
