//! Expert routing: the gate in front of each MoE layer.
//!
//! Every token independently selects `top_k` experts. The paper's
//! evaluation draws targets from a *uniform* distribution (Sec. VI,
//! following Switch-Transformer observations); Sec. VIII-B discusses
//! skewed ("hot/cold expert") routing, which we expose through a Zipf
//! exponent so the ablation benches can exercise it.
//!
//! Routing only needs per-expert token *counts*, and the simulator
//! supports two ways of producing them:
//!
//! * [`RoutingMode::Expected`] — the closed-form expected histogram
//!   (`tokens * top_k * p_i`, integerized by largest-remainder
//!   rounding). Deterministic and O(experts) with no RNG draws; this is
//!   the default for uniform routing, where the gate's law of large
//!   numbers makes per-stage sampling noise irrelevant to the paper's
//!   aggregate metrics.
//! * [`RoutingMode::Sampled`] — a multinomial drawn via a chain of
//!   binomials (exact, with a normal approximation for large counts).
//!   Skewed (`zipf`) routers default to this so the hot/cold ablations
//!   keep their stage-to-stage variance.

use rand::Rng;

/// How the router turns selection probabilities into token counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Closed-form expected counts (deterministic, no RNG draws).
    Expected,
    /// Multinomial sampling through the gate.
    Sampled,
}

/// Per-layer expert selector.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertRouter {
    n_experts: u32,
    top_k: u32,
    /// Normalized selection probabilities, one per expert.
    probs: Vec<f64>,
    mode: RoutingMode,
}

impl ExpertRouter {
    /// Uniform routing across `n_experts`, `top_k` choices per token.
    /// Defaults to [`RoutingMode::Expected`] (the analytic fast path).
    ///
    /// # Panics
    ///
    /// Panics if `n_experts` is zero or `top_k` exceeds `n_experts`.
    pub fn uniform(n_experts: u32, top_k: u32) -> Self {
        Self::zipf(n_experts, top_k, 0.0)
    }

    /// Zipf-skewed routing: expert `i` is selected with probability
    /// proportional to `(i + 1)^-skew`. `skew = 0` is uniform; larger
    /// values concentrate tokens on "hot" experts (Sec. VIII-B).
    ///
    /// Uniform (`skew = 0`) routers default to the closed-form
    /// [`RoutingMode::Expected`]; skewed routers keep
    /// [`RoutingMode::Sampled`] so ablations see routing variance.
    /// Override either with [`ExpertRouter::with_mode`].
    ///
    /// # Panics
    ///
    /// Panics if `n_experts` is zero, `top_k` exceeds `n_experts`, or
    /// `skew` is negative.
    pub fn zipf(n_experts: u32, top_k: u32, skew: f64) -> Self {
        assert!(n_experts > 0, "router needs at least one expert");
        assert!(
            top_k >= 1 && top_k <= n_experts,
            "top_k must be in 1..=n_experts"
        );
        assert!(skew >= 0.0, "skew must be non-negative");
        let mut probs: Vec<f64> = (0..n_experts)
            .map(|i| (i as f64 + 1.0).powf(-skew))
            .collect();
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        let mode = if skew == 0.0 {
            RoutingMode::Expected
        } else {
            RoutingMode::Sampled
        };
        Self {
            n_experts,
            top_k,
            probs,
            mode,
        }
    }

    /// Replace the routing mode (e.g. force sampling for an ablation
    /// of gate noise under uniform routing).
    pub fn with_mode(mut self, mode: RoutingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of experts.
    pub fn n_experts(&self) -> u32 {
        self.n_experts
    }

    /// Experts selected per token.
    pub fn top_k(&self) -> u32 {
        self.top_k
    }

    /// The active routing mode.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Route `tokens` tokens: returns per-expert token counts summing to
    /// `tokens * top_k` (each token activates `top_k` experts). In
    /// [`RoutingMode::Expected`] the RNG is not advanced.
    pub fn route<R: Rng + ?Sized>(&self, rng: &mut R, tokens: u64) -> Vec<u64> {
        match self.mode {
            RoutingMode::Expected => self.route_expected(tokens),
            RoutingMode::Sampled => self.route_sampled(rng, tokens),
        }
    }

    /// The closed-form expected histogram: `total * p_i` floored, with
    /// the remainder distributed by largest fractional part (ties to
    /// lower expert index). Sums exactly to `tokens * top_k`.
    pub fn route_expected(&self, tokens: u64) -> Vec<u64> {
        let mut counts = Vec::new();
        self.route_expected_into(tokens, &mut counts);
        counts
    }

    /// [`ExpertRouter::route_expected`] writing into a reusable buffer
    /// (cleared and refilled; capacity kept).
    pub fn route_expected_into(&self, tokens: u64, counts: &mut Vec<u64>) {
        let total = tokens * u64::from(self.top_k);
        counts.clear();
        counts.resize(self.n_experts as usize, 0);
        if total == 0 {
            return;
        }
        let mut assigned = 0u64;
        let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(self.probs.len());
        for (i, &p) in self.probs.iter().enumerate() {
            let exact = total as f64 * p;
            let floor = exact.floor() as u64;
            counts[i] = floor;
            assigned += floor;
            fracs.push((exact - floor as f64, i));
        }
        // Largest remainder; stable tie-break on expert index.
        let remainder = (total - assigned) as usize;
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, i) in fracs.iter().take(remainder) {
            counts[i] += 1;
        }
    }

    /// Multinomial sampling via a chain of conditional binomials.
    pub fn route_sampled<R: Rng + ?Sized>(&self, rng: &mut R, tokens: u64) -> Vec<u64> {
        let mut counts = Vec::new();
        self.route_sampled_into(rng, tokens, &mut counts);
        counts
    }

    /// [`ExpertRouter::route_sampled`] writing into a reusable buffer
    /// (cleared and refilled; capacity kept).
    pub fn route_sampled_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tokens: u64,
        counts: &mut Vec<u64>,
    ) {
        counts.clear();
        counts.resize(self.n_experts as usize, 0);
        if tokens == 0 {
            return;
        }
        let mut remaining = tokens * u64::from(self.top_k);
        let mut remaining_prob = 1.0f64;
        for (i, &p) in self.probs.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if i + 1 == self.probs.len() {
                counts[i] = remaining;
                break;
            }
            let cond = (p / remaining_prob).clamp(0.0, 1.0);
            let c = binomial(rng, remaining, cond);
            counts[i] = c;
            remaining -= c;
            remaining_prob -= p;
        }
    }
}

/// Sample `Binomial(n, p)`. Exact Bernoulli summation for small `n`,
/// normal approximation (Box–Muller) for large `n·p·(1-p)`.
fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let var = n as f64 * p * (1.0 - p);
    if n <= 256 || var < 100.0 {
        let mut c = 0u64;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                c += 1;
            }
        }
        c
    } else {
        let mean = n as f64 * p;
        let std = var.sqrt();
        // Box–Muller.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = (mean + std * z).round();
        sample.clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD0_0D)
    }

    #[test]
    fn counts_sum_to_tokens_times_top_k() {
        let router = ExpertRouter::uniform(8, 2);
        let mut r = rng();
        for tokens in [0u64, 1, 7, 64, 1000, 100_000] {
            let counts = router.route(&mut r, tokens);
            assert_eq!(counts.iter().sum::<u64>(), tokens * 2, "tokens={tokens}");
            assert_eq!(counts.len(), 8);
        }
    }

    #[test]
    fn sampled_counts_conserve_tokens_too() {
        let router = ExpertRouter::uniform(8, 2).with_mode(RoutingMode::Sampled);
        let mut r = rng();
        for tokens in [0u64, 1, 7, 64, 1000, 100_000] {
            let counts = router.route(&mut r, tokens);
            assert_eq!(counts.iter().sum::<u64>(), tokens * 2, "tokens={tokens}");
        }
    }

    #[test]
    fn uniform_routing_is_roughly_balanced() {
        let router = ExpertRouter::uniform(8, 2).with_mode(RoutingMode::Sampled);
        let mut r = rng();
        let counts = router.route(&mut r, 400_000);
        let expected = 400_000.0 * 2.0 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "expert {i}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn uniform_default_is_the_closed_form() {
        let router = ExpertRouter::uniform(8, 2);
        assert_eq!(router.mode(), RoutingMode::Expected);
        let mut r = rng();
        // The RNG is untouched; counts are the exact expectation.
        let counts = router.route(&mut r, 100);
        assert_eq!(counts, vec![25u64; 8]);
        let again = router.route(&mut r, 100);
        assert_eq!(counts, again, "expected mode is deterministic");
    }

    #[test]
    fn expected_mode_matches_probabilities_with_remainders() {
        // 3 experts, top-1, 10 tokens: expectation 10/3 each; the
        // remainder lands on the lowest indices by the tie-break.
        let router = ExpertRouter::uniform(3, 1);
        let counts = router.route_expected(10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn expected_mode_tracks_skewed_probabilities() {
        let router = ExpertRouter::zipf(4, 1, 1.0).with_mode(RoutingMode::Expected);
        let counts = router.route_expected(10_000);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        // p ~ 1/(i+1) normalized: 0.48, 0.24, 0.16, 0.12.
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        assert!((counts[0] as f64 - 4800.0).abs() < 5.0, "{counts:?}");
    }

    #[test]
    fn sampled_mean_converges_to_expected() {
        let router = ExpertRouter::zipf(8, 2, 0.8);
        assert_eq!(router.mode(), RoutingMode::Sampled);
        let expected = router.route_expected(4096);
        let mut r = rng();
        let mut mean = vec![0f64; 8];
        let reps = 200;
        for _ in 0..reps {
            for (m, c) in mean.iter_mut().zip(router.route_sampled(&mut r, 4096)) {
                *m += c as f64 / reps as f64;
            }
        }
        for (e, m) in expected.iter().zip(&mean) {
            let dev = (m - *e as f64).abs() / (*e as f64).max(1.0);
            assert!(dev < 0.05, "expected {e}, sampled mean {m}");
        }
    }

    #[test]
    fn zipf_concentrates_on_hot_experts() {
        let router = ExpertRouter::zipf(8, 2, 1.2);
        let mut r = rng();
        let counts = router.route(&mut r, 100_000);
        assert!(
            counts[0] > 3 * counts[7],
            "hot expert should dominate: {counts:?}"
        );
    }

    #[test]
    fn glam_scale_routing_stays_exact() {
        let router = ExpertRouter::uniform(64, 2).with_mode(RoutingMode::Sampled);
        let mut r = rng();
        let counts = router.route(&mut r, 2048 + 128);
        assert_eq!(counts.iter().sum::<u64>(), (2048 + 128) * 2);
        // With 64 experts and ~4300 selections most experts see tokens.
        let active = counts.iter().filter(|&&c| c > 0).count();
        assert!(active > 48, "{active} active experts");
    }

    #[test]
    fn binomial_edges() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        let c = binomial(&mut r, 1_000_000, 0.5);
        assert!(c > 490_000 && c < 510_000, "got {c}");
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn top_k_validated() {
        ExpertRouter::uniform(4, 5);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn n_experts_validated() {
        ExpertRouter::uniform(0, 0);
    }
}
