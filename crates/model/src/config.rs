//! Model configurations (Table I of the paper) and derived sizing.
//!
//! | Model   | Param | layers | hidden | interm | heads | deg_grp | Nex | top-k |
//! |---------|-------|--------|--------|--------|-------|---------|-----|-------|
//! | Mixtral | 47B   | 32     | 4096   | 14336  | 32    | 4 (GQA) | 8   | 2     |
//! | GLaM    | 143B  | 32     | 4096   | 16384  | 32    | 1 (MHA) | 64  | 2     |
//! | Grok1   | 314B  | 64     | 6144   | 32768  | 48    | 6 (GQA) | 8   | 2     |
//! | OPT     | 66B   | 64     | 9216   | 36864  | 72    | 1 (MHA) | —   | —     |
//! | Llama3  | 70B   | 80     | 8192   | 28672  | 64    | 8 (GQA) | —   | —     |
//!
//! Mixtral and Grok1 are MoE in every decoder block; GLaM alternates
//! dense and MoE blocks (Sec. VI). Mixtral/Grok1/Llama3 use a gated
//! 3-matrix FFN; GLaM and OPT use a 2-matrix FFN (this is what makes
//! the Table I parameter totals come out).

/// Architecture of one LLM, with FP16 weights.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Display name.
    pub name: String,
    /// Number of decoder blocks.
    pub n_layers: u32,
    /// Hidden (embedding) dimension.
    pub hidden: u64,
    /// FFN intermediate dimension.
    pub intermediate: u64,
    /// Attention head count.
    pub n_heads: u32,
    /// Heads per KV group (1 = MHA; 4–8 = GQA).
    pub deg_grp: u32,
    /// Experts per MoE layer (0 = dense model).
    pub n_experts: u32,
    /// Experts selected per token.
    pub top_k: u32,
    /// Every `moe_every`-th block is MoE (1 = all blocks, 2 = alternate);
    /// ignored for dense models.
    pub moe_every: u32,
    /// Matrices per FFN/expert (3 = gated SwiGLU-style, 2 = plain).
    pub ffn_fcs: u32,
    /// Vocabulary size (for the LM head).
    pub vocab: u64,
    /// Bytes per weight/KV element (2 = FP16).
    pub bytes_per_elem: u64,
}

impl ModelConfig {
    /// Mixtral-8x7B (47B parameters): GQA deg 4, 8 experts, top-2.
    pub fn mixtral_8x7b() -> Self {
        Self {
            name: "Mixtral".into(),
            n_layers: 32,
            hidden: 4096,
            intermediate: 14336,
            n_heads: 32,
            deg_grp: 4,
            n_experts: 8,
            top_k: 2,
            moe_every: 1,
            ffn_fcs: 3,
            vocab: 32000,
            bytes_per_elem: 2,
        }
    }

    /// GLaM (143B): MHA, 64 experts, top-2, MoE in alternate blocks.
    pub fn glam() -> Self {
        Self {
            name: "GLaM".into(),
            n_layers: 32,
            hidden: 4096,
            intermediate: 16384,
            n_heads: 32,
            deg_grp: 1,
            n_experts: 64,
            top_k: 2,
            moe_every: 2,
            ffn_fcs: 2,
            vocab: 32000,
            bytes_per_elem: 2,
        }
    }

    /// Grok-1 (314B): GQA deg 6, 8 experts, top-2.
    pub fn grok1() -> Self {
        Self {
            name: "Grok1".into(),
            n_layers: 64,
            hidden: 6144,
            intermediate: 32768,
            n_heads: 48,
            deg_grp: 6,
            n_experts: 8,
            top_k: 2,
            moe_every: 1,
            ffn_fcs: 3,
            vocab: 131072,
            bytes_per_elem: 2,
        }
    }

    /// OPT-66B: dense, MHA.
    pub fn opt_66b() -> Self {
        Self {
            name: "OPT".into(),
            n_layers: 64,
            hidden: 9216,
            intermediate: 36864,
            n_heads: 72,
            deg_grp: 1,
            n_experts: 0,
            top_k: 0,
            moe_every: 1,
            ffn_fcs: 2,
            vocab: 50272,
            bytes_per_elem: 2,
        }
    }

    /// Llama3-70B: dense, GQA deg 8.
    pub fn llama3_70b() -> Self {
        Self {
            name: "Llama3".into(),
            n_layers: 80,
            hidden: 8192,
            intermediate: 28672,
            n_heads: 64,
            deg_grp: 8,
            n_experts: 0,
            top_k: 0,
            moe_every: 1,
            ffn_fcs: 3,
            vocab: 128256,
            bytes_per_elem: 2,
        }
    }

    /// All Table I presets, in the paper's order.
    pub fn table1() -> Vec<ModelConfig> {
        vec![
            Self::mixtral_8x7b(),
            Self::glam(),
            Self::grok1(),
            Self::opt_66b(),
            Self::llama3_70b(),
        ]
    }

    /// Whether the model has MoE layers.
    pub fn is_moe(&self) -> bool {
        self.n_experts > 0
    }

    /// Per-head dimension.
    pub fn d_head(&self) -> u64 {
        self.hidden / u64::from(self.n_heads)
    }

    /// Number of KV heads (= head groups).
    pub fn kv_heads(&self) -> u32 {
        self.n_heads / self.deg_grp
    }

    /// Number of MoE decoder blocks.
    pub fn moe_block_count(&self) -> u32 {
        if self.is_moe() {
            self.n_layers / self.moe_every
        } else {
            0
        }
    }

    /// Number of dense (non-MoE) decoder blocks.
    pub fn dense_block_count(&self) -> u32 {
        self.n_layers - self.moe_block_count()
    }

    /// Parameters of the QKV-generation matrices of one block.
    pub fn qkv_params(&self) -> u64 {
        // Q: hidden x hidden; K and V: hidden x (kv_heads * d_head).
        self.hidden * (self.hidden + 2 * u64::from(self.kv_heads()) * self.d_head())
    }

    /// Parameters of the output projection of one block.
    pub fn proj_params(&self) -> u64 {
        self.hidden * self.hidden
    }

    /// Parameters of one FFN instance (dense FFN or one expert).
    pub fn ffn_params(&self) -> u64 {
        u64::from(self.ffn_fcs) * self.hidden * self.intermediate
    }

    /// Parameters of one MoE layer (all experts plus the gate).
    pub fn moe_layer_params(&self) -> u64 {
        u64::from(self.n_experts) * self.ffn_params() + self.hidden * u64::from(self.n_experts)
    }

    /// Total parameter count (decoder stack; embeddings/LM head are
    /// shared and excluded, as in the paper's Table I totals).
    pub fn param_count(&self) -> u64 {
        let per_block_attn = self.qkv_params() + self.proj_params();
        let dense = u64::from(self.dense_block_count()) * self.ffn_params();
        let moe = u64::from(self.moe_block_count()) * self.moe_layer_params();
        u64::from(self.n_layers) * per_block_attn + dense + moe
    }

    /// Total weight bytes at the configured precision.
    pub fn weight_bytes(&self) -> u64 {
        self.param_count() * self.bytes_per_elem
    }

    /// Weight bytes of everything except expert FFNs (what a
    /// heterogeneous system must duplicate to keep both device kinds
    /// able to run non-MoE layers).
    pub fn non_expert_weight_bytes(&self) -> u64 {
        let experts =
            u64::from(self.moe_block_count()) * u64::from(self.n_experts) * self.ffn_params();
        (self.param_count() - experts) * self.bytes_per_elem
    }

    /// KV-cache bytes appended per token across all layers.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * u64::from(self.kv_heads())
            * self.d_head()
            * self.bytes_per_elem
            * u64::from(self.n_layers)
    }

    /// KV-cache bytes for a sequence of `ctx` tokens.
    pub fn kv_bytes(&self, ctx: u64) -> u64 {
        self.kv_bytes_per_token() * ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I parameter totals, within 5%.
    #[test]
    fn table1_param_counts() {
        let expect = [
            ("Mixtral", 47.0),
            ("GLaM", 143.0),
            ("Grok1", 314.0),
            ("OPT", 66.0),
            ("Llama3", 70.0),
        ];
        for (config, (name, billions)) in ModelConfig::table1().iter().zip(expect) {
            assert_eq!(config.name, name);
            let got = config.param_count() as f64 / 1e9;
            let err = (got - billions).abs() / billions;
            assert!(err < 0.05, "{name}: expected ~{billions}B, got {got:.1}B");
        }
    }

    #[test]
    fn gqa_reduces_kv_heads() {
        let mixtral = ModelConfig::mixtral_8x7b();
        assert_eq!(mixtral.kv_heads(), 8);
        assert_eq!(mixtral.d_head(), 128);
        let opt = ModelConfig::opt_66b();
        assert_eq!(opt.kv_heads(), 72, "MHA keeps all heads");
    }

    #[test]
    fn glam_alternates_moe_blocks() {
        let glam = ModelConfig::glam();
        assert_eq!(glam.moe_block_count(), 16);
        assert_eq!(glam.dense_block_count(), 16);
        let mixtral = ModelConfig::mixtral_8x7b();
        assert_eq!(mixtral.moe_block_count(), 32);
        assert_eq!(mixtral.dense_block_count(), 0);
    }

    #[test]
    fn mixtral_kv_is_128_kib_per_token() {
        // 2 (K,V) x 8 kv heads x 128 d_head x 2 B x 32 layers = 128 KiB.
        let m = ModelConfig::mixtral_8x7b();
        assert_eq!(m.kv_bytes_per_token(), 128 << 10);
        assert_eq!(m.kv_bytes(4096), (128 << 10) * 4096);
    }

    #[test]
    fn experts_dominate_moe_weights() {
        // Sec. I: "the parameters of MoE layers ... account for the
        // majority of the model parameters".
        for config in [
            ModelConfig::mixtral_8x7b(),
            ModelConfig::glam(),
            ModelConfig::grok1(),
        ] {
            let expert_fraction =
                1.0 - config.non_expert_weight_bytes() as f64 / config.weight_bytes() as f64;
            assert!(expert_fraction > 0.5, "{}: {expert_fraction}", config.name);
        }
    }

    #[test]
    fn dense_models_have_no_moe() {
        for config in [ModelConfig::opt_66b(), ModelConfig::llama3_70b()] {
            assert!(!config.is_moe());
            assert_eq!(config.moe_block_count(), 0);
            assert_eq!(config.non_expert_weight_bytes(), config.weight_bytes());
        }
    }
}
