//! Stage op enumeration: from "who is in the batch" to exact kernel
//! shapes.
//!
//! Continuous batching (Sec. II-C) batches *stages*: each stage carries
//! every ongoing request one token forward (decoding) and may also
//! admit new requests whose whole prompt is processed at once
//! (prefilling). [`StageShape`] captures that composition;
//! [`enumerate_stage`] expands it into:
//!
//! * batched **FC ops** (QKV generation, projection, gates, dense FFNs,
//!   LM head) whose token dimension is the whole stage's token count;
//! * **grouped attention ops**: attention can never be batched across
//!   requests because each request owns its KV matrices (Sec. II-C),
//!   but requests with *identical* context length produce identical
//!   kernel shapes, so they collapse into one [`AttnOp`] carrying a
//!   `reqs` multiplicity. Continuous batching admits requests in
//!   cohorts that then advance in lockstep, so big stages typically
//!   shrink to a handful of groups — the system crate prices each group
//!   once and scales by `reqs`;
//! * per-MoE-layer **expert token histograms**, from the gate (analytic
//!   expectation by default, sampled for skew ablations — see
//!   [`crate::routing::RoutingMode`]).
//!
//! The shapes here are per *model pass*, unsharded; the system crate
//! applies tensor/expert/data parallelism.

use duplex_compute::kernel::GemmShape;
use rand::Rng;

use crate::config::ModelConfig;
use crate::routing::ExpertRouter;

/// Composition of one continuous-batching stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageShape {
    /// KV length attended by each decoding sequence (context so far,
    /// including the token being generated).
    pub decode_ctx: Vec<u64>,
    /// Prompt length of each prefilling sequence.
    pub prefill_len: Vec<u64>,
}

impl StageShape {
    /// A decoding-only stage over the given per-request context lengths.
    pub fn decode_only(ctx: &[u64]) -> Self {
        Self {
            decode_ctx: ctx.to_vec(),
            prefill_len: Vec::new(),
        }
    }

    /// A mixed stage: ongoing decodes plus newly admitted prefills.
    pub fn mixed(decode_ctx: &[u64], prefill_len: &[u64]) -> Self {
        Self {
            decode_ctx: decode_ctx.to_vec(),
            prefill_len: prefill_len.to_vec(),
        }
    }

    /// Whether the stage contains at least one prefilling sequence.
    pub fn is_mixed(&self) -> bool {
        !self.prefill_len.is_empty()
    }

    /// Tokens flowing through the batched FC/MoE layers.
    pub fn tokens(&self) -> u64 {
        self.decode_ctx.len() as u64 + self.prefill_len.iter().sum::<u64>()
    }

    /// Requests in the stage (the paper's "batch size").
    pub fn batch_size(&self) -> usize {
        self.decode_ctx.len() + self.prefill_len.len()
    }
}

/// Sorted run-length-encoded multiset of decode context lengths,
/// maintained under continuous-batching deltas.
///
/// This is the delta-friendly form of the grouping [`enumerate_stage`]
/// performs per stage: one `(ctx, multiplicity)` group per distinct
/// context, in ascending context order — exactly the decode-group
/// order the executor's round-robin placement walks. The three batch
/// events map to cheap multiset updates:
///
/// * **advance** (every context +1) is O(1): contexts are stored
///   relative to a running offset, and a uniform +1 preserves both the
///   sort order and the group structure;
/// * **insert** (a prefill joining the decode set) and **remove** (a
///   retirement) are O(groups) worst case (binary search + shift), and
///   groups are few: lockstep cohorts collapse to a handful.
///
/// The aggregates ([`ContextGroups::reqs`], [`ContextGroups::ctx_sum`])
/// are maintained exactly, which is what lets a pure-decode stage be
/// priced in O(1) from `(batch size, Σctx)` alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContextGroups {
    /// `(ctx - offset, multiplicity)`, ascending by relative context.
    /// Relative contexts may be negative: a freshly admitted request's
    /// context can be far below the offset accumulated by a long run.
    rel: Vec<(i64, u64)>,
    offset: i64,
    reqs: u64,
    ctx_sum: u64,
}

impl ContextGroups {
    /// Remove every context (the batch emptied or a run restarted).
    pub fn clear(&mut self) {
        self.rel.clear();
        self.offset = 0;
        self.reqs = 0;
        self.ctx_sum = 0;
    }

    /// Requests in the decode set.
    pub fn reqs(&self) -> u64 {
        self.reqs
    }

    /// Distinct context lengths (= grouped attention ops).
    pub fn group_count(&self) -> usize {
        self.rel.len()
    }

    /// Σ of all contexts (exact).
    pub fn ctx_sum(&self) -> u64 {
        self.ctx_sum
    }

    /// Advance every context by one token (O(1)).
    pub fn advance(&mut self) {
        self.offset += 1;
        self.ctx_sum += self.reqs;
    }

    /// Add one request at context `ctx`.
    pub fn insert(&mut self, ctx: u64) {
        let rel = ctx as i64 - self.offset;
        match self.rel.binary_search_by_key(&rel, |g| g.0) {
            Ok(i) => self.rel[i].1 += 1,
            Err(i) => self.rel.insert(i, (rel, 1)),
        }
        self.reqs += 1;
        self.ctx_sum += ctx;
    }

    /// Remove one request at context `ctx`; false if absent.
    pub fn remove(&mut self, ctx: u64) -> bool {
        let rel = ctx as i64 - self.offset;
        match self.rel.binary_search_by_key(&rel, |g| g.0) {
            Ok(i) => {
                self.rel[i].1 -= 1;
                if self.rel[i].1 == 0 {
                    self.rel.remove(i);
                }
                self.reqs -= 1;
                self.ctx_sum -= ctx;
                true
            }
            Err(_) => false,
        }
    }

    /// Groups as `(ctx, multiplicity)` in ascending context order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.rel
            .iter()
            .map(|&(rel, count)| ((rel + self.offset) as u64, count))
    }

    /// Expand into per-request contexts, ascending (for materializing a
    /// [`StageShape`] when an incremental path must fall back).
    pub fn fill_decode_ctx(&self, out: &mut Vec<u64>) {
        out.clear();
        for (ctx, count) in self.iter() {
            out.extend(std::iter::repeat_n(ctx, count as usize));
        }
    }
}

/// One batched fully-connected GEMM, run `count` times per model pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcOp {
    /// Which FC this is ("qkv", "proj", "ffn_up", "ffn_down", "gate",
    /// "lm_head").
    pub name: &'static str,
    /// Instances per model pass (usually the layer count).
    pub count: u64,
    /// Per-instance GEMM shape.
    pub shape: GemmShape,
}

impl FcOp {
    /// DRAM bytes of weights streamed per instance.
    pub fn weight_bytes(&self, bytes_per_elem: u64) -> u64 {
        self.shape.weight_bytes(bytes_per_elem)
    }
}

/// Attention of one request in one decoder layer (replicated `count`
/// times across layers), on behalf of `reqs` requests with identical
/// shape. Head groups are folded into the row dimension: attention is
/// memory-bound in every regime the paper studies, so the group fold
/// preserves both byte traffic and FLOPs.
///
/// All per-op quantities ([`AttnOp::flops`], [`AttnOp::kv_dram_bytes`],
/// the kernel shapes) describe **one** request; consumers scale by
/// `reqs` (and `count`) when aggregating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnOp {
    /// True for a decoding sequence, false for a prefilling one.
    pub decode: bool,
    /// KV length attended.
    pub ctx: u64,
    /// Query rows per KV group (`deg_grp` when decoding, `len * deg_grp`
    /// when prefilling).
    pub q_rows: u64,
    /// KV groups (= KV heads).
    pub groups: u64,
    /// Per-head dimension.
    pub d_head: u64,
    /// Causal masking (halves the effective score/value FLOPs).
    pub causal: bool,
    /// Layer replication count.
    pub count: u64,
    /// How many identical requests this grouped op stands for.
    pub reqs: u64,
}

impl AttnOp {
    /// Effective score-context length after causal masking.
    fn eff_ctx(&self) -> u64 {
        if self.causal {
            self.ctx.div_ceil(2)
        } else {
            self.ctx
        }
    }

    /// The Q·Kᵀ GEMM, groups folded into rows.
    pub fn score_shape(&self) -> GemmShape {
        GemmShape {
            m: self.q_rows * self.groups,
            n: self.eff_ctx(),
            k: self.d_head,
        }
    }

    /// The softmax(S)·V GEMM, groups folded into rows.
    pub fn value_shape(&self) -> GemmShape {
        GemmShape {
            m: self.q_rows * self.groups,
            n: self.d_head,
            k: self.eff_ctx(),
        }
    }

    /// Softmax dimensions (rows, cols).
    pub fn softmax_dims(&self) -> (u64, u64) {
        (self.q_rows * self.groups, self.eff_ctx())
    }

    /// DRAM bytes of K plus V streamed per layer instance.
    pub fn kv_dram_bytes(&self, bytes_per_elem: u64) -> u64 {
        2 * self.ctx * self.d_head * self.groups * bytes_per_elem
    }

    /// FLOPs per layer instance (score + value GEMMs).
    pub fn flops(&self) -> f64 {
        self.score_shape().flops() + self.value_shape().flops()
    }

    /// Arithmetic intensity of this attention op. For GQA decode this is
    /// ~`deg_grp` (4–8), for MHA ~1 — the paper's Sec. III-A numbers.
    pub fn op_b(&self, bytes_per_elem: u64) -> f64 {
        self.flops() / self.kv_dram_bytes(bytes_per_elem) as f64
    }
}

/// Per-expert token counts for one MoE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoeLayerWork {
    /// Index of the MoE block within the model.
    pub layer: u32,
    /// Tokens routed to each expert (length = expert count, sums to
    /// `stage_tokens * top_k`).
    pub expert_tokens: Vec<u64>,
}

impl MoeLayerWork {
    /// Total token-expert assignments in this layer.
    pub fn total_tokens(&self) -> u64 {
        self.expert_tokens.iter().sum()
    }
}

/// The kernels of one expert FFN invocation over `tokens` tokens:
/// `(ffn_fcs - 1)` up-projections, one down-projection, and the gated
/// activation element count (0 for 2-matrix FFNs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertWork {
    /// Up/gate projection shape (`tokens x intermediate x hidden`).
    pub up_shape: GemmShape,
    /// How many up/gate projections run.
    pub up_count: u64,
    /// Down projection shape (`tokens x hidden x intermediate`).
    pub down_shape: GemmShape,
    /// Elements through the gated-activation unit.
    pub activation_elems: u64,
}

impl ExpertWork {
    /// Build the kernel set for one expert of `config` over `tokens`.
    pub fn for_tokens(config: &ModelConfig, tokens: u64) -> Self {
        let up = GemmShape {
            m: tokens,
            n: config.intermediate,
            k: config.hidden,
        };
        let down = GemmShape {
            m: tokens,
            n: config.hidden,
            k: config.intermediate,
        };
        let gated = config.ffn_fcs == 3;
        Self {
            up_shape: up,
            up_count: u64::from(config.ffn_fcs) - 1,
            down_shape: down,
            activation_elems: if gated {
                tokens * config.intermediate
            } else {
                0
            },
        }
    }

    /// Weight bytes streamed when the expert runs (all its matrices).
    pub fn weight_bytes(&self, bytes_per_elem: u64) -> u64 {
        self.up_shape.weight_bytes(bytes_per_elem) * self.up_count
            + self.down_shape.weight_bytes(bytes_per_elem)
    }

    /// Total FLOPs of the expert invocation.
    pub fn flops(&self) -> f64 {
        self.up_shape.flops() * self.up_count as f64 + self.down_shape.flops()
    }
}

/// Everything one stage executes, unsharded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageWork {
    /// Tokens through the batched FC/MoE path.
    pub tokens: u64,
    /// Rows through the LM head (one per sequence producing a token).
    pub lm_rows: u64,
    /// Batched FC ops with per-pass counts.
    pub fc_ops: Vec<FcOp>,
    /// Grouped attention ops (identical-shape requests share one op
    /// with a `reqs` multiplicity), decode groups before prefill
    /// groups, each class in ascending context order.
    pub attn: Vec<AttnOp>,
    /// Per-MoE-layer expert histograms (empty for dense models).
    pub moe: Vec<MoeLayerWork>,
    /// KV-cache bytes appended by this stage (all layers, all requests).
    pub kv_write_bytes: u64,
    /// Whether the stage was mixed (had prefill sequences).
    pub mixed: bool,
}

/// Fill `fc_ops` with the batched FC GEMMs of one stage over `tokens`
/// FC-path tokens and `lm_rows` LM-head rows, clearing any previous
/// contents (capacity is kept). Exposed separately from
/// [`enumerate_stage`] because the FC op list is a pure function of
/// `(tokens, lm_rows)` — incremental pricing rebuilds it from batch
/// aggregates without enumerating attention groups.
pub fn fill_fc_ops(config: &ModelConfig, tokens: u64, lm_rows: u64, fc_ops: &mut Vec<FcOp>) {
    let layers = u64::from(config.n_layers);
    let kv_n = 2 * u64::from(config.kv_heads()) * config.d_head();
    fc_ops.clear();
    fc_ops.push(FcOp {
        name: "qkv",
        count: layers,
        shape: GemmShape {
            m: tokens,
            n: config.hidden + kv_n,
            k: config.hidden,
        },
    });
    fc_ops.push(FcOp {
        name: "proj",
        count: layers,
        shape: GemmShape {
            m: tokens,
            n: config.hidden,
            k: config.hidden,
        },
    });
    let dense_blocks = u64::from(config.dense_block_count());
    if dense_blocks > 0 {
        fc_ops.push(FcOp {
            name: "ffn_up",
            count: dense_blocks * (u64::from(config.ffn_fcs) - 1),
            shape: GemmShape {
                m: tokens,
                n: config.intermediate,
                k: config.hidden,
            },
        });
        fc_ops.push(FcOp {
            name: "ffn_down",
            count: dense_blocks,
            shape: GemmShape {
                m: tokens,
                n: config.hidden,
                k: config.intermediate,
            },
        });
    }
    if config.is_moe() {
        fc_ops.push(FcOp {
            name: "gate",
            count: u64::from(config.moe_block_count()),
            shape: GemmShape {
                m: tokens,
                n: u64::from(config.n_experts),
                k: config.hidden,
            },
        });
    }
    fc_ops.push(FcOp {
        name: "lm_head",
        count: 1,
        shape: GemmShape {
            m: lm_rows,
            n: config.vocab,
            k: config.hidden,
        },
    });
}

/// Expand a stage into its kernel shapes, drawing expert routing from
/// `router` via `rng` (one draw per MoE layer when sampling; the
/// default expected-value mode computes one histogram and shares it).
pub fn enumerate_stage<R: Rng + ?Sized>(
    config: &ModelConfig,
    shape: &StageShape,
    router: &ExpertRouter,
    rng: &mut R,
) -> StageWork {
    let mut work = StageWork::default();
    enumerate_stage_into(config, shape, router, rng, &mut work);
    work
}

/// Allocation-reusing form of [`enumerate_stage`]: clears and refills
/// `work`, keeping the capacity of its vectors (including each MoE
/// layer's histogram). The stage-pricing hot loop calls this with an
/// executor-owned scratch `StageWork` so steady-state enumeration
/// performs no per-stage heap allocation beyond the context sort.
pub fn enumerate_stage_into<R: Rng + ?Sized>(
    config: &ModelConfig,
    shape: &StageShape,
    router: &ExpertRouter,
    rng: &mut R,
    work: &mut StageWork,
) {
    let tokens = shape.tokens();
    let lm_rows = shape.decode_ctx.len() as u64 + shape.prefill_len.len() as u64;
    let layers = u64::from(config.n_layers);

    work.tokens = tokens;
    work.lm_rows = lm_rows;
    work.kv_write_bytes = tokens * config.kv_bytes_per_token();
    work.mixed = shape.is_mixed();

    fill_fc_ops(config, tokens, lm_rows, &mut work.fc_ops);

    // Group identical-shape requests: one AttnOp per distinct context
    // length (per class), with a multiplicity, in ascending context
    // order. Sorting + run-length encoding beats a hash map here both
    // when contexts are uniform (lockstep cohorts: the sort is a no-op
    // over equal keys) and when they are all distinct (no per-request
    // hashing); the deterministic order keeps round-robin data-parallel
    // placement reproducible.
    let attn = &mut work.attn;
    attn.clear();
    let mut sorted_ctx = shape.decode_ctx.clone();
    sorted_ctx.sort_unstable();
    for &ctx in &sorted_ctx {
        if let Some(last) = attn.last_mut() {
            if last.ctx == ctx {
                last.reqs += 1;
                continue;
            }
        }
        attn.push(AttnOp {
            decode: true,
            ctx,
            q_rows: u64::from(config.deg_grp),
            groups: u64::from(config.kv_heads()),
            d_head: config.d_head(),
            causal: false,
            count: layers,
            reqs: 1,
        });
    }
    let decode_groups = attn.len();
    let mut sorted_len = shape.prefill_len.clone();
    sorted_len.sort_unstable();
    for &len in &sorted_len {
        if let Some(last) = attn[decode_groups..].last_mut() {
            if last.ctx == len {
                last.reqs += 1;
                continue;
            }
        }
        attn.push(AttnOp {
            decode: false,
            ctx: len,
            q_rows: len * u64::from(config.deg_grp),
            groups: u64::from(config.kv_heads()),
            d_head: config.d_head(),
            causal: true,
            count: layers,
            reqs: 1,
        });
    }
    debug_assert!(attn[..decode_groups].iter().all(|a| a.decode));

    // MoE histograms, reusing each layer's existing allocation.
    let blocks = if config.is_moe() {
        config.moe_block_count() as usize
    } else {
        0
    };
    work.moe.truncate(blocks);
    while work.moe.len() < blocks {
        work.moe.push(MoeLayerWork {
            layer: 0,
            expert_tokens: Vec::new(),
        });
    }
    for (i, layer) in work.moe.iter_mut().enumerate() {
        layer.layer = i as u32;
    }
    if blocks > 0 {
        match router.mode() {
            // Expected counts are a pure function of the token count:
            // compute one histogram and share it across layers.
            crate::routing::RoutingMode::Expected => {
                let (first, rest) = work.moe.split_at_mut(1);
                router.route_expected_into(tokens, &mut first[0].expert_tokens);
                for layer in rest {
                    layer.expert_tokens.clone_from(&first[0].expert_tokens);
                }
            }
            // Each layer's gate is an independent draw.
            crate::routing::RoutingMode::Sampled => {
                for layer in &mut work.moe {
                    router.route_sampled_into(rng, tokens, &mut layer.expert_tokens);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn work(config: &ModelConfig, shape: &StageShape) -> StageWork {
        let router = if config.is_moe() {
            ExpertRouter::uniform(config.n_experts, config.top_k)
        } else {
            ExpertRouter::uniform(1, 1)
        };
        let mut rng = StdRng::seed_from_u64(7);
        enumerate_stage(config, shape, &router, &mut rng)
    }

    #[test]
    fn decode_only_stage_token_math() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::decode_only(&[100, 200, 300]);
        let w = work(&config, &shape);
        assert_eq!(w.tokens, 3);
        assert_eq!(w.lm_rows, 3);
        assert!(!w.mixed);
        assert_eq!(w.attn.len(), 3, "distinct contexts stay distinct groups");
        assert!(w.attn.iter().all(|a| a.decode && a.reqs == 1));
    }

    #[test]
    fn identical_contexts_collapse_into_one_group() {
        let config = ModelConfig::mixtral_8x7b();
        let w = work(&config, &StageShape::decode_only(&[512; 64]));
        assert_eq!(w.attn.len(), 1);
        assert_eq!(w.attn[0].reqs, 64);
        assert_eq!(w.attn[0].ctx, 512);

        // Interleaved duplicates group in ascending context order.
        let w = work(&config, &StageShape::decode_only(&[9, 7, 9, 7, 7]));
        assert_eq!(w.attn.len(), 2);
        assert_eq!((w.attn[0].ctx, w.attn[0].reqs), (7, 3));
        assert_eq!((w.attn[1].ctx, w.attn[1].reqs), (9, 2));
    }

    #[test]
    fn group_multiplicities_sum_to_batch_size() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::mixed(&[64, 64, 128, 64, 128], &[2048, 2048, 512]);
        let w = work(&config, &shape);
        let decode_reqs: u64 = w.attn.iter().filter(|a| a.decode).map(|a| a.reqs).sum();
        let prefill_reqs: u64 = w.attn.iter().filter(|a| !a.decode).map(|a| a.reqs).sum();
        assert_eq!(decode_reqs, 5);
        assert_eq!(prefill_reqs, 3);
        // Decode groups come first, each class in ascending ctx order.
        assert_eq!(w.attn.len(), 4);
        assert!(w.attn[0].decode && w.attn[1].decode);
        assert_eq!((w.attn[2].ctx, w.attn[2].reqs), (512, 1));
        assert_eq!((w.attn[3].ctx, w.attn[3].reqs), (2048, 2));
    }

    #[test]
    fn mixed_stage_tokens_include_prompt() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::mixed(&[50; 31], &[2048]);
        let w = work(&config, &shape);
        assert_eq!(w.tokens, 31 + 2048);
        assert_eq!(w.lm_rows, 32);
        assert!(w.mixed);
        let prefill: Vec<_> = w.attn.iter().filter(|a| !a.decode).collect();
        assert_eq!(prefill.len(), 1);
        assert!(prefill[0].causal);
        assert_eq!(prefill[0].q_rows, 2048 * 4);
    }

    #[test]
    fn moe_histograms_per_layer_sum() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::decode_only(&[128; 32]);
        let w = work(&config, &shape);
        assert_eq!(w.moe.len(), 32);
        for layer in &w.moe {
            assert_eq!(layer.total_tokens(), 32 * 2, "top-2 over 32 tokens");
            assert_eq!(layer.expert_tokens.len(), 8);
        }
    }

    #[test]
    fn glam_has_dense_and_moe_blocks() {
        let config = ModelConfig::glam();
        let shape = StageShape::decode_only(&[512; 64]);
        let w = work(&config, &shape);
        assert_eq!(w.moe.len(), 16);
        assert!(w.fc_ops.iter().any(|f| f.name == "ffn_up" && f.count == 16));
        assert!(w.fc_ops.iter().any(|f| f.name == "gate" && f.count == 16));
    }

    #[test]
    fn dense_models_have_no_moe_work() {
        let config = ModelConfig::llama3_70b();
        let shape = StageShape::decode_only(&[512; 8]);
        let w = work(&config, &shape);
        assert!(w.moe.is_empty());
        assert!(w.fc_ops.iter().any(|f| f.name == "ffn_up"));
        assert!(!w.fc_ops.iter().any(|f| f.name == "gate"));
    }

    #[test]
    fn gqa_decode_attention_op_b_matches_paper() {
        // Sec. I: GQA attention Op/B is 4-8; MHA ~1.
        let mixtral = ModelConfig::mixtral_8x7b();
        let w = work(&mixtral, &StageShape::decode_only(&[2048]));
        let op_b = w.attn[0].op_b(2);
        assert!((op_b - 4.0).abs() < 0.1, "Mixtral deg 4, got {op_b}");

        let opt = ModelConfig::opt_66b();
        let w = work(&opt, &StageShape::decode_only(&[2048]));
        let op_b = w.attn[0].op_b(2);
        assert!((op_b - 1.0).abs() < 0.1, "MHA, got {op_b}");
    }

    #[test]
    fn expert_work_op_b_is_token_count() {
        let config = ModelConfig::mixtral_8x7b();
        for t in [1u64, 8, 64] {
            let e = ExpertWork::for_tokens(&config, t);
            let op_b = e.flops() / e.weight_bytes(2) as f64;
            assert!((op_b - t as f64).abs() < 1e-9, "tokens {t}: {op_b}");
        }
    }

    #[test]
    fn expert_weight_bytes_match_config() {
        let config = ModelConfig::mixtral_8x7b();
        let e = ExpertWork::for_tokens(&config, 5);
        assert_eq!(e.weight_bytes(2), config.ffn_params() * 2);
        assert_eq!(e.up_count, 2);
        assert!(e.activation_elems > 0);

        let glam = ModelConfig::glam();
        let e2 = ExpertWork::for_tokens(&glam, 5);
        assert_eq!(e2.up_count, 1);
        assert_eq!(e2.activation_elems, 0);
    }

    #[test]
    fn kv_write_bytes_scale_with_tokens() {
        let config = ModelConfig::mixtral_8x7b();
        let w1 = work(&config, &StageShape::decode_only(&[10; 4]));
        let w2 = work(&config, &StageShape::mixed(&[10; 4], &[100]));
        assert_eq!(w1.kv_write_bytes, 4 * config.kv_bytes_per_token());
        assert_eq!(w2.kv_write_bytes, 104 * config.kv_bytes_per_token());
    }

    #[test]
    fn causal_masking_halves_prefill_flops() {
        let config = ModelConfig::mixtral_8x7b();
        let w = work(&config, &StageShape::mixed(&[], &[1024]));
        let a = w.attn[0];
        let full = 2.0 * (a.q_rows * a.groups) as f64 * a.ctx as f64 * a.d_head as f64 * 2.0; // score + value
        assert!((a.flops() - full / 2.0).abs() / full < 0.01);
    }

    #[test]
    fn context_groups_track_the_multiset() {
        let mut g = ContextGroups::default();
        for ctx in [9, 7, 9, 7, 7] {
            g.insert(ctx);
        }
        assert_eq!(g.reqs(), 5);
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.ctx_sum(), 39);
        let groups: Vec<_> = g.iter().collect();
        assert_eq!(groups, vec![(7, 3), (9, 2)]);

        g.advance();
        assert_eq!(g.ctx_sum(), 44);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(8, 3), (10, 2)]);

        assert!(g.remove(10));
        assert!(!g.remove(10_000));
        assert_eq!(g.reqs(), 4);
        assert_eq!(g.ctx_sum(), 34);

        let mut out = Vec::new();
        g.fill_decode_ctx(&mut out);
        assert_eq!(out, vec![8, 8, 8, 10]);
    }

    #[test]
    fn context_groups_merge_on_advance_collision() {
        // A request inserted below the advancing cohort must merge into
        // the cohort's group when the contexts meet.
        let mut g = ContextGroups::default();
        g.insert(100);
        for _ in 0..50 {
            g.advance();
        }
        g.insert(130); // below the cohort's current 150
        assert_eq!(g.group_count(), 2);
        for _ in 0..20 {
            g.advance();
        }
        // 150+20 = 170, 130+20 = 150: still distinct, both advanced.
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(150, 1), (170, 1)]);
        g.insert(170);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(150, 1), (170, 2)]);
        assert_eq!(g.ctx_sum(), 150 + 170 + 170);
    }

    #[test]
    fn context_groups_insert_below_offset() {
        let mut g = ContextGroups::default();
        for _ in 0..1000 {
            g.advance(); // offset far above any context
        }
        g.insert(5);
        g.insert(3);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(3, 1), (5, 1)]);
        g.advance();
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(4, 1), (6, 1)]);
        assert_eq!(g.ctx_sum(), 10);
    }

    #[test]
    fn context_groups_clear_resets_everything() {
        let mut g = ContextGroups::default();
        g.insert(10);
        g.advance();
        g.clear();
        assert_eq!(g.reqs(), 0);
        assert_eq!(g.ctx_sum(), 0);
        assert_eq!(g.group_count(), 0);
        g.insert(4);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(4, 1)]);
    }

    #[test]
    fn fill_fc_ops_matches_enumeration() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::mixed(&[50; 31], &[2048]);
        let w = work(&config, &shape);
        let mut direct = Vec::new();
        fill_fc_ops(&config, shape.tokens(), 32, &mut direct);
        assert_eq!(w.fc_ops, direct);
    }

    #[test]
    fn fc_ops_include_lm_head_once() {
        let config = ModelConfig::mixtral_8x7b();
        let w = work(&config, &StageShape::decode_only(&[1; 16]));
        let lm: Vec<_> = w.fc_ops.iter().filter(|f| f.name == "lm_head").collect();
        assert_eq!(lm.len(), 1);
        assert_eq!(lm[0].count, 1);
        assert_eq!(lm[0].shape.m, 16);
        assert_eq!(lm[0].shape.n, config.vocab);
    }
}
