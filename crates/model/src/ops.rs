//! Stage op enumeration: from "who is in the batch" to exact kernel
//! shapes.
//!
//! Continuous batching (Sec. II-C) batches *stages*: each stage carries
//! every ongoing request one token forward (decoding) and may also
//! admit new requests whose whole prompt is processed at once
//! (prefilling). [`StageShape`] captures that composition;
//! [`enumerate_stage`] expands it into:
//!
//! * batched **FC ops** (QKV generation, projection, gates, dense FFNs,
//!   LM head) whose token dimension is the whole stage's token count;
//! * **grouped attention ops**: attention can never be batched across
//!   requests because each request owns its KV matrices (Sec. II-C),
//!   but requests with *identical* context (for prefills: identical
//!   `(new, past)` pairs — see prefill-with-past on [`StageShape`])
//!   produce identical kernel shapes, so they collapse into one
//!   [`AttnOp`] carrying a `reqs` multiplicity. Continuous batching admits requests in
//!   cohorts that then advance in lockstep, so big stages typically
//!   shrink to a handful of groups — the system crate prices each group
//!   once and scales by `reqs`;
//! * per-MoE-layer **expert token histograms**, from the gate (analytic
//!   expectation by default, sampled for skew ablations — see
//!   [`crate::routing::RoutingMode`]).
//!
//! The shapes here are per *model pass*, unsharded; the system crate
//! applies tensor/expert/data parallelism.

use duplex_compute::kernel::GemmShape;
use rand::Rng;

use crate::config::ModelConfig;
use crate::routing::ExpertRouter;

/// Composition of one continuous-batching stage.
///
/// Prefills may be *prefills-with-past*: a sequence whose earlier
/// context is already KV-resident (a reused conversation history, or
/// the chunks of a long prompt processed in previous stages) prefills
/// only its new tokens, but those tokens cross-attend over the
/// resident context. `prefill_past` carries that resident length, and
/// `prefill_hold` marks intermediate chunks of a longer prompt, which
/// attend and write KV but do not sample an output token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageShape {
    /// KV length attended by each decoding sequence (context so far,
    /// including the token being generated).
    pub decode_ctx: Vec<u64>,
    /// New tokens prefilled by each prefilling sequence (the whole
    /// prompt for a fresh request; the non-resident suffix or chunk
    /// under prefix reuse / chunked prefill).
    pub prefill_len: Vec<u64>,
    /// KV-resident context each prefill's new tokens attend over, in
    /// addition to themselves. Either empty (every prefill is fresh)
    /// or parallel to `prefill_len`.
    pub prefill_past: Vec<u64>,
    /// Prefills that are intermediate chunks of a longer prompt: they
    /// attend and write KV but emit no LM-head row (the prompt's final
    /// chunk samples the first token). Either empty (every prefill
    /// samples) or parallel to `prefill_len`.
    pub prefill_hold: Vec<bool>,
}

impl StageShape {
    /// A decoding-only stage over the given per-request context lengths.
    pub fn decode_only(ctx: &[u64]) -> Self {
        Self {
            decode_ctx: ctx.to_vec(),
            ..Self::default()
        }
    }

    /// A mixed stage: ongoing decodes plus newly admitted fresh
    /// prefills (no resident past).
    pub fn mixed(decode_ctx: &[u64], prefill_len: &[u64]) -> Self {
        Self {
            decode_ctx: decode_ctx.to_vec(),
            prefill_len: prefill_len.to_vec(),
            ..Self::default()
        }
    }

    /// A mixed stage whose prefills carry `(new_tokens, past_ctx)`
    /// pairs: each prefill attends over `past_ctx` resident tokens in
    /// addition to its own.
    pub fn with_past(decode_ctx: &[u64], prefill: &[(u64, u64)]) -> Self {
        let mut s = Self {
            decode_ctx: decode_ctx.to_vec(),
            ..Self::default()
        };
        for &(len, past) in prefill {
            s.push_prefill(len, past, false);
        }
        s
    }

    /// Append one prefill of `len` new tokens over `past` resident
    /// context; `hold` marks an intermediate chunk (no token sampled).
    /// Maintains the parallel-vector invariant: `prefill_past` /
    /// `prefill_hold` stay empty while every entry is zero / sampling.
    pub fn push_prefill(&mut self, len: u64, past: u64, hold: bool) {
        if past > 0 || !self.prefill_past.is_empty() {
            if self.prefill_past.is_empty() {
                self.prefill_past.resize(self.prefill_len.len(), 0);
            }
            self.prefill_past.push(past);
        }
        if hold || !self.prefill_hold.is_empty() {
            if self.prefill_hold.is_empty() {
                self.prefill_hold.resize(self.prefill_len.len(), false);
            }
            self.prefill_hold.push(hold);
        }
        self.prefill_len.push(len);
    }

    /// Remove every prefill, keeping vector capacity.
    pub fn clear_prefills(&mut self) {
        self.prefill_len.clear();
        self.prefill_past.clear();
        self.prefill_hold.clear();
    }

    /// Resident past context of prefill `i` (0 when all prefills are
    /// fresh).
    pub fn prefill_past_of(&self, i: usize) -> u64 {
        self.prefill_past.get(i).copied().unwrap_or(0)
    }

    /// Whether prefill `i` samples an output token (false for
    /// intermediate chunks of a longer prompt).
    pub fn prefill_samples(&self, i: usize) -> bool {
        !self.prefill_hold.get(i).copied().unwrap_or(false)
    }

    /// Whether the stage contains at least one prefilling sequence.
    pub fn is_mixed(&self) -> bool {
        !self.prefill_len.is_empty()
    }

    /// Tokens flowing through the batched FC/MoE layers.
    pub fn tokens(&self) -> u64 {
        self.decode_ctx.len() as u64 + self.prefill_len.iter().sum::<u64>()
    }

    /// Requests in the stage (the paper's "batch size").
    pub fn batch_size(&self) -> usize {
        self.decode_ctx.len() + self.prefill_len.len()
    }

    /// Sequences sampling an output token this stage (every decode,
    /// plus prefills that are not held chunks) — the LM-head row count.
    pub fn sampled_rows(&self) -> u64 {
        let held = self.prefill_hold.iter().filter(|&&h| h).count();
        (self.decode_ctx.len() + self.prefill_len.len() - held) as u64
    }
}

/// Sorted run-length-encoded multiset of decode context lengths,
/// maintained under continuous-batching deltas.
///
/// This is the delta-friendly form of the grouping [`enumerate_stage`]
/// performs per stage: one `(ctx, multiplicity)` group per distinct
/// context, in ascending context order — exactly the decode-group
/// order the executor's round-robin placement walks. The three batch
/// events map to cheap multiset updates:
///
/// * **advance** (every context +1) is O(1): contexts are stored
///   relative to a running offset, and a uniform +1 preserves both the
///   sort order and the group structure;
/// * **insert** (a prefill joining the decode set) and **remove** (a
///   retirement) are O(groups) worst case (binary search + shift), and
///   groups are few: lockstep cohorts collapse to a handful.
///
/// The aggregates ([`ContextGroups::reqs`], [`ContextGroups::ctx_sum`])
/// are maintained exactly, which is what lets a pure-decode stage be
/// priced in O(1) from `(batch size, Σctx)` alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContextGroups {
    /// `(ctx - offset, multiplicity)`, ascending by relative context.
    /// Relative contexts may be negative: a freshly admitted request's
    /// context can be far below the offset accumulated by a long run.
    rel: Vec<(i64, u64)>,
    offset: i64,
    reqs: u64,
    ctx_sum: u64,
}

impl ContextGroups {
    /// Remove every context (the batch emptied or a run restarted).
    pub fn clear(&mut self) {
        self.rel.clear();
        self.offset = 0;
        self.reqs = 0;
        self.ctx_sum = 0;
    }

    /// Requests in the decode set.
    pub fn reqs(&self) -> u64 {
        self.reqs
    }

    /// Distinct context lengths (= grouped attention ops).
    pub fn group_count(&self) -> usize {
        self.rel.len()
    }

    /// Σ of all contexts (exact).
    pub fn ctx_sum(&self) -> u64 {
        self.ctx_sum
    }

    /// Advance every context by one token (O(1)).
    pub fn advance(&mut self) {
        self.offset += 1;
        self.ctx_sum += self.reqs;
    }

    /// Add one request at context `ctx`.
    pub fn insert(&mut self, ctx: u64) {
        let rel = ctx as i64 - self.offset;
        match self.rel.binary_search_by_key(&rel, |g| g.0) {
            Ok(i) => self.rel[i].1 += 1,
            Err(i) => self.rel.insert(i, (rel, 1)),
        }
        self.reqs += 1;
        self.ctx_sum += ctx;
    }

    /// Remove one request at context `ctx`; false if absent.
    pub fn remove(&mut self, ctx: u64) -> bool {
        let rel = ctx as i64 - self.offset;
        match self.rel.binary_search_by_key(&rel, |g| g.0) {
            Ok(i) => {
                self.rel[i].1 -= 1;
                if self.rel[i].1 == 0 {
                    self.rel.remove(i);
                }
                self.reqs -= 1;
                self.ctx_sum -= ctx;
                true
            }
            Err(_) => false,
        }
    }

    /// Groups as `(ctx, multiplicity)` in ascending context order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.rel
            .iter()
            .map(|&(rel, count)| ((rel + self.offset) as u64, count))
    }

    /// Expand into per-request contexts, ascending (for materializing a
    /// [`StageShape`] when an incremental path must fall back).
    pub fn fill_decode_ctx(&self, out: &mut Vec<u64>) {
        out.clear();
        for (ctx, count) in self.iter() {
            out.extend(std::iter::repeat_n(ctx, count as usize));
        }
    }
}

/// One batched fully-connected GEMM, run `count` times per model pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcOp {
    /// Which FC this is ("qkv", "proj", "ffn_up", "ffn_down", "gate",
    /// "lm_head").
    pub name: &'static str,
    /// Instances per model pass (usually the layer count).
    pub count: u64,
    /// Per-instance GEMM shape.
    pub shape: GemmShape,
}

impl FcOp {
    /// DRAM bytes of weights streamed per instance.
    pub fn weight_bytes(&self, bytes_per_elem: u64) -> u64 {
        self.shape.weight_bytes(bytes_per_elem)
    }
}

/// Attention of one request in one decoder layer (replicated `count`
/// times across layers), on behalf of `reqs` requests with identical
/// shape. Head groups are folded into the row dimension: attention is
/// memory-bound in every regime the paper studies, so the group fold
/// preserves both byte traffic and FLOPs.
///
/// All per-op quantities ([`AttnOp::flops`], [`AttnOp::kv_dram_bytes`],
/// the kernel shapes) describe **one** request; consumers scale by
/// `reqs` (and `count`) when aggregating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnOp {
    /// True for a decoding sequence, false for a prefilling one.
    pub decode: bool,
    /// KV length produced by this op's own tokens (the full context for
    /// a decode, the new-token count for a prefill).
    pub ctx: u64,
    /// KV-resident context attended *in addition to* `ctx`: the parked
    /// history of a reused turn or the already-processed chunks of a
    /// long prompt (prefill-with-past). Always 0 for decode ops (their
    /// whole context is `ctx`) and fresh prefills. The past is fully
    /// attended — causal masking applies only within the `ctx` block.
    pub past: u64,
    /// Query rows per KV group (`deg_grp` when decoding, `len * deg_grp`
    /// when prefilling).
    pub q_rows: u64,
    /// KV groups (= KV heads).
    pub groups: u64,
    /// Per-head dimension.
    pub d_head: u64,
    /// Causal masking over the new-token block (halves its effective
    /// score/value FLOPs; the `past` block is attended in full).
    pub causal: bool,
    /// Layer replication count.
    pub count: u64,
    /// How many identical requests this grouped op stands for.
    pub reqs: u64,
    /// Whether each request of this group emits an LM-head row (every
    /// decode; prefills unless they are held intermediate chunks).
    pub samples: bool,
}

impl AttnOp {
    /// Total KV length attended (`past + ctx`).
    pub fn attended(&self) -> u64 {
        self.past + self.ctx
    }

    /// Effective score-context length after causal masking: the past is
    /// fully attended, the new block causally.
    fn eff_ctx(&self) -> u64 {
        self.past
            + if self.causal {
                self.ctx.div_ceil(2)
            } else {
                self.ctx
            }
    }

    /// The Q·Kᵀ GEMM, groups folded into rows.
    pub fn score_shape(&self) -> GemmShape {
        GemmShape {
            m: self.q_rows * self.groups,
            n: self.eff_ctx(),
            k: self.d_head,
        }
    }

    /// The softmax(S)·V GEMM, groups folded into rows.
    pub fn value_shape(&self) -> GemmShape {
        GemmShape {
            m: self.q_rows * self.groups,
            n: self.d_head,
            k: self.eff_ctx(),
        }
    }

    /// Softmax dimensions (rows, cols).
    pub fn softmax_dims(&self) -> (u64, u64) {
        (self.q_rows * self.groups, self.eff_ctx())
    }

    /// DRAM bytes of K plus V streamed per layer instance (resident
    /// past included: the suffix's cross-attention reads it too).
    pub fn kv_dram_bytes(&self, bytes_per_elem: u64) -> u64 {
        2 * self.attended() * self.d_head * self.groups * bytes_per_elem
    }

    /// FLOPs per layer instance (score + value GEMMs).
    pub fn flops(&self) -> f64 {
        self.score_shape().flops() + self.value_shape().flops()
    }

    /// Arithmetic intensity of this attention op. For GQA decode this is
    /// ~`deg_grp` (4–8), for MHA ~1 — the paper's Sec. III-A numbers.
    pub fn op_b(&self, bytes_per_elem: u64) -> f64 {
        self.flops() / self.kv_dram_bytes(bytes_per_elem) as f64
    }
}

/// Per-expert token counts for one MoE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoeLayerWork {
    /// Index of the MoE block within the model.
    pub layer: u32,
    /// Tokens routed to each expert (length = expert count, sums to
    /// `stage_tokens * top_k`).
    pub expert_tokens: Vec<u64>,
}

impl MoeLayerWork {
    /// Total token-expert assignments in this layer.
    pub fn total_tokens(&self) -> u64 {
        self.expert_tokens.iter().sum()
    }
}

/// The kernels of one expert FFN invocation over `tokens` tokens:
/// `(ffn_fcs - 1)` up-projections, one down-projection, and the gated
/// activation element count (0 for 2-matrix FFNs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpertWork {
    /// Up/gate projection shape (`tokens x intermediate x hidden`).
    pub up_shape: GemmShape,
    /// How many up/gate projections run.
    pub up_count: u64,
    /// Down projection shape (`tokens x hidden x intermediate`).
    pub down_shape: GemmShape,
    /// Elements through the gated-activation unit.
    pub activation_elems: u64,
}

impl ExpertWork {
    /// Build the kernel set for one expert of `config` over `tokens`.
    pub fn for_tokens(config: &ModelConfig, tokens: u64) -> Self {
        let up = GemmShape {
            m: tokens,
            n: config.intermediate,
            k: config.hidden,
        };
        let down = GemmShape {
            m: tokens,
            n: config.hidden,
            k: config.intermediate,
        };
        let gated = config.ffn_fcs == 3;
        Self {
            up_shape: up,
            up_count: u64::from(config.ffn_fcs) - 1,
            down_shape: down,
            activation_elems: if gated {
                tokens * config.intermediate
            } else {
                0
            },
        }
    }

    /// Weight bytes streamed when the expert runs (all its matrices).
    pub fn weight_bytes(&self, bytes_per_elem: u64) -> u64 {
        self.up_shape.weight_bytes(bytes_per_elem) * self.up_count
            + self.down_shape.weight_bytes(bytes_per_elem)
    }

    /// Total FLOPs of the expert invocation.
    pub fn flops(&self) -> f64 {
        self.up_shape.flops() * self.up_count as f64 + self.down_shape.flops()
    }
}

/// Everything one stage executes, unsharded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageWork {
    /// Tokens through the batched FC/MoE path.
    pub tokens: u64,
    /// Rows through the LM head (one per sequence producing a token).
    pub lm_rows: u64,
    /// Batched FC ops with per-pass counts.
    pub fc_ops: Vec<FcOp>,
    /// Grouped attention ops (identical-shape requests share one op
    /// with a `reqs` multiplicity), decode groups before prefill
    /// groups; decodes ascend by context, prefills by `(len, past,
    /// hold)`.
    pub attn: Vec<AttnOp>,
    /// Per-MoE-layer expert histograms (empty for dense models).
    pub moe: Vec<MoeLayerWork>,
    /// Every MoE layer of this stage sees the same histogram (always
    /// true under expected-value routing). When set by
    /// [`enumerate_stage_into`], only `moe[0]` is filled — the
    /// remaining layers keep unspecified contents and consumers must
    /// price `moe[0]` once per layer. [`enumerate_stage`] materializes
    /// every layer and clears this flag.
    pub moe_uniform: bool,
    /// KV-cache bytes appended by this stage (all layers, all requests).
    pub kv_write_bytes: u64,
    /// Whether the stage was mixed (had prefill sequences).
    pub mixed: bool,
    /// Sort scratch for decode contexts (reused across calls; contents
    /// after a call are an implementation detail).
    pub ctx_scratch: Vec<u64>,
    /// Sort scratch for prefill `(len, past, hold)` keys.
    pub pre_scratch: Vec<(u64, u64, bool)>,
}

/// Fill `fc_ops` with the batched FC GEMMs of one stage over `tokens`
/// FC-path tokens and `lm_rows` LM-head rows, clearing any previous
/// contents (capacity is kept). Exposed separately from
/// [`enumerate_stage`] because the FC op list is a pure function of
/// `(tokens, lm_rows)` — incremental pricing rebuilds it from batch
/// aggregates without enumerating attention groups.
pub fn fill_fc_ops(config: &ModelConfig, tokens: u64, lm_rows: u64, fc_ops: &mut Vec<FcOp>) {
    let layers = u64::from(config.n_layers);
    let kv_n = 2 * u64::from(config.kv_heads()) * config.d_head();
    fc_ops.clear();
    fc_ops.push(FcOp {
        name: "qkv",
        count: layers,
        shape: GemmShape {
            m: tokens,
            n: config.hidden + kv_n,
            k: config.hidden,
        },
    });
    fc_ops.push(FcOp {
        name: "proj",
        count: layers,
        shape: GemmShape {
            m: tokens,
            n: config.hidden,
            k: config.hidden,
        },
    });
    let dense_blocks = u64::from(config.dense_block_count());
    if dense_blocks > 0 {
        fc_ops.push(FcOp {
            name: "ffn_up",
            count: dense_blocks * (u64::from(config.ffn_fcs) - 1),
            shape: GemmShape {
                m: tokens,
                n: config.intermediate,
                k: config.hidden,
            },
        });
        fc_ops.push(FcOp {
            name: "ffn_down",
            count: dense_blocks,
            shape: GemmShape {
                m: tokens,
                n: config.hidden,
                k: config.intermediate,
            },
        });
    }
    if config.is_moe() {
        fc_ops.push(FcOp {
            name: "gate",
            count: u64::from(config.moe_block_count()),
            shape: GemmShape {
                m: tokens,
                n: u64::from(config.n_experts),
                k: config.hidden,
            },
        });
    }
    fc_ops.push(FcOp {
        name: "lm_head",
        count: 1,
        shape: GemmShape {
            m: lm_rows,
            n: config.vocab,
            k: config.hidden,
        },
    });
}

/// Expand a stage into its kernel shapes, drawing expert routing from
/// `router` via `rng` (one draw per MoE layer when sampling; the
/// default expected-value mode computes one histogram and shares it).
pub fn enumerate_stage<R: Rng + ?Sized>(
    config: &ModelConfig,
    shape: &StageShape,
    router: &ExpertRouter,
    rng: &mut R,
) -> StageWork {
    let mut work = StageWork::default();
    enumerate_stage_into(config, shape, router, rng, &mut work);
    // The _into form leaves uniform histograms collapsed into `moe[0]`;
    // materialize them so casual consumers see every layer filled.
    if work.moe_uniform {
        let (first, rest) = work.moe.split_at_mut(1);
        for layer in rest {
            layer.expert_tokens.clone_from(&first[0].expert_tokens);
        }
        work.moe_uniform = false;
    }
    work
}

/// Allocation-reusing form of [`enumerate_stage`]: clears and refills
/// `work`, keeping the capacity of its vectors (including each MoE
/// layer's histogram). The stage-pricing hot loop calls this with an
/// executor-owned scratch `StageWork` so steady-state enumeration
/// performs no per-stage heap allocation at all (the context and
/// prefill sorts run in `work`'s scratch vectors).
///
/// Unlike [`enumerate_stage`], uniform MoE histograms stay collapsed:
/// under expected-value routing only `work.moe[0]` is filled and
/// `work.moe_uniform` is set (see [`StageWork::moe_uniform`]).
pub fn enumerate_stage_into<R: Rng + ?Sized>(
    config: &ModelConfig,
    shape: &StageShape,
    router: &ExpertRouter,
    rng: &mut R,
    work: &mut StageWork,
) {
    debug_assert!(
        shape.prefill_past.is_empty() || shape.prefill_past.len() == shape.prefill_len.len(),
        "prefill_past must be empty or parallel to prefill_len"
    );
    debug_assert!(
        shape.prefill_hold.is_empty() || shape.prefill_hold.len() == shape.prefill_len.len(),
        "prefill_hold must be empty or parallel to prefill_len"
    );
    let tokens = shape.tokens();
    let lm_rows = shape.sampled_rows();
    let layers = u64::from(config.n_layers);

    work.tokens = tokens;
    work.lm_rows = lm_rows;
    work.kv_write_bytes = tokens * config.kv_bytes_per_token();
    work.mixed = shape.is_mixed();

    fill_fc_ops(config, tokens, lm_rows, &mut work.fc_ops);

    // Group identical-shape requests: one AttnOp per distinct context
    // length (per class), with a multiplicity, in ascending context
    // order. Sorting + run-length encoding beats a hash map here both
    // when contexts are uniform (lockstep cohorts: the sort is a no-op
    // over equal keys) and when they are all distinct (no per-request
    // hashing); the deterministic order keeps round-robin data-parallel
    // placement reproducible.
    let StageWork {
        attn,
        ctx_scratch,
        pre_scratch,
        ..
    } = &mut *work;
    attn.clear();
    ctx_scratch.clear();
    ctx_scratch.extend_from_slice(&shape.decode_ctx);
    ctx_scratch.sort_unstable();
    for &ctx in ctx_scratch.iter() {
        if let Some(last) = attn.last_mut() {
            if last.ctx == ctx {
                last.reqs += 1;
                continue;
            }
        }
        attn.push(AttnOp {
            decode: true,
            ctx,
            past: 0,
            q_rows: u64::from(config.deg_grp),
            groups: u64::from(config.kv_heads()),
            d_head: config.d_head(),
            causal: false,
            count: layers,
            reqs: 1,
            samples: true,
        });
    }
    let decode_groups = attn.len();
    // Prefill groups key on the full `(len, past, hold)` triple: only
    // identical kernel shapes with identical LM-row accounting may
    // share a group.
    pre_scratch.clear();
    pre_scratch.extend((0..shape.prefill_len.len()).map(|i| {
        (
            shape.prefill_len[i],
            shape.prefill_past_of(i),
            !shape.prefill_samples(i),
        )
    }));
    pre_scratch.sort_unstable();
    for &(len, past, hold) in pre_scratch.iter() {
        if let Some(last) = attn[decode_groups..].last_mut() {
            if last.ctx == len && last.past == past && last.samples != hold {
                last.reqs += 1;
                continue;
            }
        }
        attn.push(AttnOp {
            decode: false,
            ctx: len,
            past,
            q_rows: len * u64::from(config.deg_grp),
            groups: u64::from(config.kv_heads()),
            d_head: config.d_head(),
            causal: true,
            count: layers,
            reqs: 1,
            samples: !hold,
        });
    }
    debug_assert!(attn[..decode_groups].iter().all(|a| a.decode));

    // MoE histograms, reusing each layer's existing allocation.
    let blocks = if config.is_moe() {
        config.moe_block_count() as usize
    } else {
        0
    };
    work.moe.truncate(blocks);
    while work.moe.len() < blocks {
        work.moe.push(MoeLayerWork {
            layer: 0,
            expert_tokens: Vec::new(),
        });
    }
    for (i, layer) in work.moe.iter_mut().enumerate() {
        layer.layer = i as u32;
    }
    work.moe_uniform = false;
    if blocks > 0 {
        match router.mode() {
            // Expected counts are a pure function of the token count:
            // compute one histogram; layers 1.. stay collapsed (see
            // [`StageWork::moe_uniform`]).
            crate::routing::RoutingMode::Expected => {
                router.route_expected_into(tokens, &mut work.moe[0].expert_tokens);
                work.moe_uniform = true;
            }
            // Each layer's gate is an independent draw.
            crate::routing::RoutingMode::Sampled => {
                for layer in &mut work.moe {
                    router.route_sampled_into(rng, tokens, &mut layer.expert_tokens);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn work(config: &ModelConfig, shape: &StageShape) -> StageWork {
        let router = if config.is_moe() {
            ExpertRouter::uniform(config.n_experts, config.top_k)
        } else {
            ExpertRouter::uniform(1, 1)
        };
        let mut rng = StdRng::seed_from_u64(7);
        enumerate_stage(config, shape, &router, &mut rng)
    }

    #[test]
    fn decode_only_stage_token_math() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::decode_only(&[100, 200, 300]);
        let w = work(&config, &shape);
        assert_eq!(w.tokens, 3);
        assert_eq!(w.lm_rows, 3);
        assert!(!w.mixed);
        assert_eq!(w.attn.len(), 3, "distinct contexts stay distinct groups");
        assert!(w.attn.iter().all(|a| a.decode && a.reqs == 1));
    }

    #[test]
    fn identical_contexts_collapse_into_one_group() {
        let config = ModelConfig::mixtral_8x7b();
        let w = work(&config, &StageShape::decode_only(&[512; 64]));
        assert_eq!(w.attn.len(), 1);
        assert_eq!(w.attn[0].reqs, 64);
        assert_eq!(w.attn[0].ctx, 512);

        // Interleaved duplicates group in ascending context order.
        let w = work(&config, &StageShape::decode_only(&[9, 7, 9, 7, 7]));
        assert_eq!(w.attn.len(), 2);
        assert_eq!((w.attn[0].ctx, w.attn[0].reqs), (7, 3));
        assert_eq!((w.attn[1].ctx, w.attn[1].reqs), (9, 2));
    }

    #[test]
    fn group_multiplicities_sum_to_batch_size() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::mixed(&[64, 64, 128, 64, 128], &[2048, 2048, 512]);
        let w = work(&config, &shape);
        let decode_reqs: u64 = w.attn.iter().filter(|a| a.decode).map(|a| a.reqs).sum();
        let prefill_reqs: u64 = w.attn.iter().filter(|a| !a.decode).map(|a| a.reqs).sum();
        assert_eq!(decode_reqs, 5);
        assert_eq!(prefill_reqs, 3);
        // Decode groups come first, each class in ascending ctx order.
        assert_eq!(w.attn.len(), 4);
        assert!(w.attn[0].decode && w.attn[1].decode);
        assert_eq!((w.attn[2].ctx, w.attn[2].reqs), (512, 1));
        assert_eq!((w.attn[3].ctx, w.attn[3].reqs), (2048, 2));
    }

    #[test]
    fn mixed_stage_tokens_include_prompt() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::mixed(&[50; 31], &[2048]);
        let w = work(&config, &shape);
        assert_eq!(w.tokens, 31 + 2048);
        assert_eq!(w.lm_rows, 32);
        assert!(w.mixed);
        let prefill: Vec<_> = w.attn.iter().filter(|a| !a.decode).collect();
        assert_eq!(prefill.len(), 1);
        assert!(prefill[0].causal);
        assert_eq!(prefill[0].q_rows, 2048 * 4);
    }

    #[test]
    fn moe_histograms_per_layer_sum() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::decode_only(&[128; 32]);
        let w = work(&config, &shape);
        assert_eq!(w.moe.len(), 32);
        for layer in &w.moe {
            assert_eq!(layer.total_tokens(), 32 * 2, "top-2 over 32 tokens");
            assert_eq!(layer.expert_tokens.len(), 8);
        }
    }

    #[test]
    fn glam_has_dense_and_moe_blocks() {
        let config = ModelConfig::glam();
        let shape = StageShape::decode_only(&[512; 64]);
        let w = work(&config, &shape);
        assert_eq!(w.moe.len(), 16);
        assert!(w.fc_ops.iter().any(|f| f.name == "ffn_up" && f.count == 16));
        assert!(w.fc_ops.iter().any(|f| f.name == "gate" && f.count == 16));
    }

    #[test]
    fn dense_models_have_no_moe_work() {
        let config = ModelConfig::llama3_70b();
        let shape = StageShape::decode_only(&[512; 8]);
        let w = work(&config, &shape);
        assert!(w.moe.is_empty());
        assert!(w.fc_ops.iter().any(|f| f.name == "ffn_up"));
        assert!(!w.fc_ops.iter().any(|f| f.name == "gate"));
    }

    #[test]
    fn gqa_decode_attention_op_b_matches_paper() {
        // Sec. I: GQA attention Op/B is 4-8; MHA ~1.
        let mixtral = ModelConfig::mixtral_8x7b();
        let w = work(&mixtral, &StageShape::decode_only(&[2048]));
        let op_b = w.attn[0].op_b(2);
        assert!((op_b - 4.0).abs() < 0.1, "Mixtral deg 4, got {op_b}");

        let opt = ModelConfig::opt_66b();
        let w = work(&opt, &StageShape::decode_only(&[2048]));
        let op_b = w.attn[0].op_b(2);
        assert!((op_b - 1.0).abs() < 0.1, "MHA, got {op_b}");
    }

    #[test]
    fn expert_work_op_b_is_token_count() {
        let config = ModelConfig::mixtral_8x7b();
        for t in [1u64, 8, 64] {
            let e = ExpertWork::for_tokens(&config, t);
            let op_b = e.flops() / e.weight_bytes(2) as f64;
            assert!((op_b - t as f64).abs() < 1e-9, "tokens {t}: {op_b}");
        }
    }

    #[test]
    fn expert_weight_bytes_match_config() {
        let config = ModelConfig::mixtral_8x7b();
        let e = ExpertWork::for_tokens(&config, 5);
        assert_eq!(e.weight_bytes(2), config.ffn_params() * 2);
        assert_eq!(e.up_count, 2);
        assert!(e.activation_elems > 0);

        let glam = ModelConfig::glam();
        let e2 = ExpertWork::for_tokens(&glam, 5);
        assert_eq!(e2.up_count, 1);
        assert_eq!(e2.activation_elems, 0);
    }

    #[test]
    fn kv_write_bytes_scale_with_tokens() {
        let config = ModelConfig::mixtral_8x7b();
        let w1 = work(&config, &StageShape::decode_only(&[10; 4]));
        let w2 = work(&config, &StageShape::mixed(&[10; 4], &[100]));
        assert_eq!(w1.kv_write_bytes, 4 * config.kv_bytes_per_token());
        assert_eq!(w2.kv_write_bytes, 104 * config.kv_bytes_per_token());
    }

    #[test]
    fn prefill_with_past_charges_resident_kv() {
        let config = ModelConfig::mixtral_8x7b();
        // A 256-token suffix over a 768-token resident history.
        let shape = StageShape::with_past(&[100; 3], &[(256, 768)]);
        let w = work(&config, &shape);
        assert_eq!(w.tokens, 3 + 256, "only new tokens flow through FC");
        assert_eq!(w.lm_rows, 4);
        let pre = w.attn.iter().find(|a| !a.decode).expect("prefill op");
        assert_eq!((pre.ctx, pre.past), (256, 768));
        assert_eq!(pre.attended(), 1024);
        // KV streamed covers past + new; a fresh prefill of the same
        // suffix reads only its own KV.
        let fresh = AttnOp { past: 0, ..*pre };
        assert_eq!(
            pre.kv_dram_bytes(2) - fresh.kv_dram_bytes(2),
            2 * 768 * pre.d_head * pre.groups * 2
        );
        // Score context: the past is fully attended, the new block
        // causally.
        assert_eq!(pre.score_shape().n, 768 + 128);
        assert!(pre.flops() > fresh.flops());
        // KV written is only the new tokens'.
        assert_eq!(w.kv_write_bytes, (3 + 256) * config.kv_bytes_per_token());
    }

    #[test]
    fn held_chunks_emit_no_lm_rows_and_group_exactly() {
        let config = ModelConfig::mixtral_8x7b();
        let mut shape = StageShape::decode_only(&[50; 4]);
        // Two identical held chunks, one identical sampling prefill:
        // the hold flag must keep them in separate groups.
        shape.push_prefill(128, 256, true);
        shape.push_prefill(128, 256, false);
        shape.push_prefill(128, 256, true);
        assert_eq!(shape.sampled_rows(), 5);
        let w = work(&config, &shape);
        assert_eq!(w.lm_rows, 5, "held chunks sample no token");
        let pre: Vec<_> = w.attn.iter().filter(|a| !a.decode).collect();
        assert_eq!(pre.len(), 2, "hold splits otherwise identical groups");
        let held = pre.iter().find(|a| !a.samples).expect("held group");
        assert_eq!(held.reqs, 2);
        let sampling = pre.iter().find(|a| a.samples).expect("sampling group");
        assert_eq!(sampling.reqs, 1);
    }

    #[test]
    fn prefill_groups_key_on_len_and_past() {
        let config = ModelConfig::mixtral_8x7b();
        // Same suffix length, different pasts: distinct kernel shapes.
        let shape = StageShape::with_past(&[], &[(64, 0), (64, 512), (64, 512), (64, 0)]);
        let w = work(&config, &shape);
        assert_eq!(w.attn.len(), 2);
        assert_eq!((w.attn[0].past, w.attn[0].reqs), (0, 2));
        assert_eq!((w.attn[1].past, w.attn[1].reqs), (512, 2));
    }

    #[test]
    fn push_prefill_keeps_parallel_invariant() {
        let mut s = StageShape::default();
        s.push_prefill(10, 0, false);
        assert!(s.prefill_past.is_empty() && s.prefill_hold.is_empty());
        s.push_prefill(20, 7, false);
        assert_eq!(s.prefill_past, vec![0, 7]);
        assert!(s.prefill_hold.is_empty());
        s.push_prefill(30, 0, true);
        assert_eq!(s.prefill_past, vec![0, 7, 0]);
        assert_eq!(s.prefill_hold, vec![false, false, true]);
        assert_eq!(s.prefill_past_of(1), 7);
        assert!(s.prefill_samples(1));
        assert!(!s.prefill_samples(2));
        assert_eq!(s.sampled_rows(), 2);
        s.clear_prefills();
        assert!(s.prefill_len.is_empty() && s.prefill_past.is_empty());
    }

    #[test]
    fn causal_masking_halves_prefill_flops() {
        let config = ModelConfig::mixtral_8x7b();
        let w = work(&config, &StageShape::mixed(&[], &[1024]));
        let a = w.attn[0];
        let full = 2.0 * (a.q_rows * a.groups) as f64 * a.ctx as f64 * a.d_head as f64 * 2.0; // score + value
        assert!((a.flops() - full / 2.0).abs() / full < 0.01);
    }

    #[test]
    fn context_groups_track_the_multiset() {
        let mut g = ContextGroups::default();
        for ctx in [9, 7, 9, 7, 7] {
            g.insert(ctx);
        }
        assert_eq!(g.reqs(), 5);
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.ctx_sum(), 39);
        let groups: Vec<_> = g.iter().collect();
        assert_eq!(groups, vec![(7, 3), (9, 2)]);

        g.advance();
        assert_eq!(g.ctx_sum(), 44);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(8, 3), (10, 2)]);

        assert!(g.remove(10));
        assert!(!g.remove(10_000));
        assert_eq!(g.reqs(), 4);
        assert_eq!(g.ctx_sum(), 34);

        let mut out = Vec::new();
        g.fill_decode_ctx(&mut out);
        assert_eq!(out, vec![8, 8, 8, 10]);
    }

    #[test]
    fn context_groups_merge_on_advance_collision() {
        // A request inserted below the advancing cohort must merge into
        // the cohort's group when the contexts meet.
        let mut g = ContextGroups::default();
        g.insert(100);
        for _ in 0..50 {
            g.advance();
        }
        g.insert(130); // below the cohort's current 150
        assert_eq!(g.group_count(), 2);
        for _ in 0..20 {
            g.advance();
        }
        // 150+20 = 170, 130+20 = 150: still distinct, both advanced.
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(150, 1), (170, 1)]);
        g.insert(170);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(150, 1), (170, 2)]);
        assert_eq!(g.ctx_sum(), 150 + 170 + 170);
    }

    #[test]
    fn context_groups_insert_below_offset() {
        let mut g = ContextGroups::default();
        for _ in 0..1000 {
            g.advance(); // offset far above any context
        }
        g.insert(5);
        g.insert(3);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(3, 1), (5, 1)]);
        g.advance();
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(4, 1), (6, 1)]);
        assert_eq!(g.ctx_sum(), 10);
    }

    #[test]
    fn context_groups_clear_resets_everything() {
        let mut g = ContextGroups::default();
        g.insert(10);
        g.advance();
        g.clear();
        assert_eq!(g.reqs(), 0);
        assert_eq!(g.ctx_sum(), 0);
        assert_eq!(g.group_count(), 0);
        g.insert(4);
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![(4, 1)]);
    }

    #[test]
    fn fill_fc_ops_matches_enumeration() {
        let config = ModelConfig::mixtral_8x7b();
        let shape = StageShape::mixed(&[50; 31], &[2048]);
        let w = work(&config, &shape);
        let mut direct = Vec::new();
        fill_fc_ops(&config, shape.tokens(), 32, &mut direct);
        assert_eq!(w.fc_ops, direct);
    }

    #[test]
    fn fc_ops_include_lm_head_once() {
        let config = ModelConfig::mixtral_8x7b();
        let w = work(&config, &StageShape::decode_only(&[1; 16]));
        let lm: Vec<_> = w.fc_ops.iter().filter(|f| f.name == "lm_head").collect();
        assert_eq!(lm.len(), 1);
        assert_eq!(lm[0].count, 1);
        assert_eq!(lm[0].shape.m, 16);
        assert_eq!(lm[0].shape.n, config.vocab);
    }
}
