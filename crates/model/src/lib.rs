//! LLM architecture descriptions for the Duplex simulator.
//!
//! This crate knows what work an LLM stage *is*, independent of the
//! hardware that runs it:
//!
//! * [`config`] — model configurations (decoder count, hidden and
//!   intermediate dimensions, GQA group degree, expert count, top-k)
//!   with presets for the five models of Table I: Mixtral-8x7B, GLaM,
//!   Grok-1, OPT-66B and Llama3-70B; parameter counting and KV-cache
//!   sizing.
//! * [`ops`] — given the composition of a continuous-batching stage
//!   (which sequences are decoding at what context length, which are
//!   prefilling at what input length), enumerate every GEMM, attention
//!   operation and MoE expert invocation with exact shapes.
//! * [`routing`] — the gate: uniform (or skewed) top-k expert selection
//!   per token, producing per-expert token histograms, the input to
//!   expert co-processing.
//!
//! # Example
//!
//! ```
//! use duplex_model::{ModelConfig, ops::StageShape};
//! use duplex_model::routing::ExpertRouter;
//!
//! let mixtral = ModelConfig::mixtral_8x7b();
//! assert_eq!(mixtral.n_experts, 8);
//! // ~47B parameters, as in Table I.
//! let b = mixtral.param_count() as f64 / 1e9;
//! assert!((b - 47.0).abs() < 2.0);
//!
//! // A decoding-only stage with 4 requests at context 1024.
//! let stage = StageShape::decode_only(&[1024; 4]);
//! let mut rng = rand::rng();
//! let router = ExpertRouter::uniform(mixtral.n_experts, mixtral.top_k);
//! let work = duplex_model::ops::enumerate_stage(&mixtral, &stage, &router, &mut rng);
//! assert_eq!(work.moe.len(), mixtral.moe_block_count() as usize);
//! ```

pub mod config;
pub mod kv_cache;
pub mod ops;
pub mod routing;

pub use config::ModelConfig;
pub use kv_cache::{EvictionPolicy, KvCacheError, KvEvent, PagedKvCache};
pub use ops::{AttnOp, ContextGroups, FcOp, MoeLayerWork, StageShape, StageWork};
pub use routing::ExpertRouter;
