//! Paged KV-cache management with migration and recomputation
//! (Sec. VIII-C of the paper, after PagedAttention).
//!
//! The KV cache grows with batch size and sequence length; when it
//! outgrows device memory a serving system can *evict* requests,
//! either migrating their KV pages to host memory (and paying PCIe
//! bytes twice) or deleting them and recomputing the prefill later.
//! The paper notes both "can be complementarily applied to Duplex";
//! this module provides the bookkeeping and the cost hooks so the
//! harness can quantify that trade.
//!
//! Pages are fixed-size blocks of tokens; a request owns a page list.
//! Eviction is LRU over requests (ongoing decode requests touch their
//! pages every stage, so LRU == "longest since scheduled").

use std::collections::HashMap;

/// What to do with an evicted request's KV pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Copy pages to host memory; restore copies them back.
    Migrate,
    /// Drop pages; restore recomputes the prefill.
    Recompute,
}

/// An eviction or restoration event, for cost accounting upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvEvent {
    /// Pages moved device -> host.
    MigratedOut {
        /// Request id.
        request: u64,
        /// Bytes moved.
        bytes: u64,
    },
    /// Pages moved host -> device.
    MigratedIn {
        /// Request id.
        request: u64,
        /// Bytes moved.
        bytes: u64,
    },
    /// KV must be rebuilt by re-running the prefill.
    Recomputed {
        /// Request id.
        request: u64,
        /// Tokens to re-prefill.
        tokens: u64,
    },
}

/// Errors from cache operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCacheError {
    /// The cache cannot fit the request even after evicting everything
    /// else.
    CapacityExceeded {
        /// Bytes requested.
        requested: u64,
        /// Total capacity.
        capacity: u64,
    },
    /// Operation on a request the cache does not know.
    UnknownRequest(u64),
}

impl std::fmt::Display for KvCacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvCacheError::CapacityExceeded {
                requested,
                capacity,
            } => {
                write!(f, "request needs {requested} bytes, cache holds {capacity}")
            }
            KvCacheError::UnknownRequest(id) => write!(f, "unknown request {id}"),
        }
    }
}

impl std::error::Error for KvCacheError {}

#[derive(Debug, Clone)]
struct Entry {
    pages: u64,
    tokens: u64,
    last_touch: u64,
    resident: bool,
}

/// One cache entry as exported by [`PagedKvCache::export_entries`]:
/// everything needed to rebuild the entry (and the cache's LRU order)
/// exactly in [`PagedKvCache::import_entries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvEntrySnapshot {
    /// The request (or conversation) owning the entry.
    pub request: u64,
    /// Pages currently allocated (0 for a recompute-evicted entry).
    pub pages: u64,
    /// Tokens of context the entry covers.
    pub tokens: u64,
    /// LRU clock stamp of the entry's last touch.
    pub last_touch: u64,
    /// Whether the pages are on-device.
    pub resident: bool,
}

/// Page-granular KV cache for one device pool.
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    page_tokens: u64,
    bytes_per_token: u64,
    capacity_bytes: u64,
    policy: EvictionPolicy,
    clock: u64,
    entries: HashMap<u64, Entry>,
    resident_pages: u64,
}

impl PagedKvCache {
    /// A cache of `capacity_bytes` using pages of `page_tokens` tokens,
    /// with `bytes_per_token` from the model config.
    ///
    /// # Panics
    ///
    /// Panics if `page_tokens` or `bytes_per_token` is zero.
    pub fn new(
        capacity_bytes: u64,
        page_tokens: u64,
        bytes_per_token: u64,
        policy: EvictionPolicy,
    ) -> Self {
        assert!(page_tokens > 0, "pages must hold at least one token");
        assert!(bytes_per_token > 0, "tokens must occupy bytes");
        Self {
            page_tokens,
            bytes_per_token,
            capacity_bytes,
            policy,
            clock: 0,
            entries: HashMap::new(),
            resident_pages: 0,
        }
    }

    fn page_bytes(&self) -> u64 {
        self.page_tokens * self.bytes_per_token
    }

    fn pages_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.page_tokens)
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages * self.page_bytes()
    }

    /// Internal fragmentation: allocated-but-unused token slots as a
    /// fraction of resident capacity (PagedAttention keeps this under
    /// one page per request).
    pub fn fragmentation(&self) -> f64 {
        let resident_tokens: u64 = self
            .entries
            .values()
            .filter(|e| e.resident)
            .map(|e| e.tokens)
            .sum();
        let slots = self.resident_pages * self.page_tokens;
        if slots == 0 {
            return 0.0;
        }
        1.0 - resident_tokens as f64 / slots as f64
    }

    /// Admit a request with `tokens` of context, evicting LRU victims
    /// as needed. Returns the eviction events incurred.
    ///
    /// # Errors
    ///
    /// [`KvCacheError::CapacityExceeded`] if the request alone exceeds
    /// the cache.
    pub fn admit(&mut self, request: u64, tokens: u64) -> Result<Vec<KvEvent>, KvCacheError> {
        let pages = self.pages_for(tokens);
        let bytes = pages * self.page_bytes();
        if bytes > self.capacity_bytes {
            return Err(KvCacheError::CapacityExceeded {
                requested: bytes,
                capacity: self.capacity_bytes,
            });
        }
        let mut events = Vec::new();
        while self.resident_bytes() + bytes > self.capacity_bytes {
            events.push(self.evict_lru(request));
        }
        self.clock += 1;
        self.entries.insert(
            request,
            Entry {
                pages,
                tokens,
                last_touch: self.clock,
                resident: true,
            },
        );
        self.resident_pages += pages;
        Ok(events)
    }

    /// Append `tokens` decode tokens to a resident request, growing its
    /// page list (evicting LRU victims if a new page is needed).
    ///
    /// # Errors
    ///
    /// [`KvCacheError::UnknownRequest`] if the request is not resident.
    pub fn append(&mut self, request: u64, tokens: u64) -> Result<Vec<KvEvent>, KvCacheError> {
        let (new_pages, _old_pages) = {
            let e = self
                .entries
                .get(&request)
                .filter(|e| e.resident)
                .ok_or(KvCacheError::UnknownRequest(request))?;
            (self.pages_for(e.tokens + tokens), e.pages)
        };
        let e = self.entries.get_mut(&request).expect("checked above");
        let grow = new_pages - e.pages;
        e.tokens += tokens;
        e.pages = new_pages;
        self.clock += 1;
        e.last_touch = self.clock;
        self.resident_pages += grow;
        let mut events = Vec::new();
        while self.resident_bytes() > self.capacity_bytes {
            events.push(self.evict_lru(request));
        }
        Ok(events)
    }

    /// Evict the least-recently-used resident request, if any. This is
    /// the external pressure hook: a scheduler that parks finished
    /// conversations' KV between turns calls it to make room for new
    /// admissions (reuse-aware accounting in the scenario suite).
    pub fn evict_one(&mut self) -> Option<KvEvent> {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.resident)
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(id, _)| *id)?;
        Some(self.evict_victim(victim))
    }

    fn evict_lru(&mut self, protect: u64) -> KvEvent {
        let victim = self
            .entries
            .iter()
            .filter(|(id, e)| e.resident && **id != protect)
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(id, _)| *id)
            .expect("capacity invariant: another resident request exists");
        self.evict_victim(victim)
    }

    fn evict_victim(&mut self, victim: u64) -> KvEvent {
        let e = self.entries.get_mut(&victim).expect("victim exists");
        e.resident = false;
        self.resident_pages -= e.pages;
        match self.policy {
            EvictionPolicy::Migrate => KvEvent::MigratedOut {
                request: victim,
                bytes: e.pages * self.page_tokens * self.bytes_per_token,
            },
            EvictionPolicy::Recompute => {
                let tokens = e.tokens;
                e.pages = 0;
                KvEvent::Recomputed {
                    request: victim,
                    tokens,
                }
            }
        }
    }

    /// Bring an evicted request back, evicting others if needed.
    /// Returns the restoration event plus any evictions it caused.
    ///
    /// # Errors
    ///
    /// [`KvCacheError::UnknownRequest`] if the request was never seen.
    pub fn restore(&mut self, request: u64) -> Result<Vec<KvEvent>, KvCacheError> {
        let e = self
            .entries
            .get(&request)
            .ok_or(KvCacheError::UnknownRequest(request))?;
        if e.resident {
            return Ok(Vec::new());
        }
        let tokens = e.tokens;
        let bytes = self.pages_for(tokens) * self.page_bytes();
        let mut events = Vec::new();
        while self.resident_bytes() + bytes > self.capacity_bytes {
            events.push(self.evict_lru(request));
        }
        let e = self.entries.get_mut(&request).expect("checked above");
        e.resident = true;
        e.pages = tokens.div_ceil(self.page_tokens);
        self.clock += 1;
        e.last_touch = self.clock;
        self.resident_pages += e.pages;
        events.push(match self.policy {
            EvictionPolicy::Migrate => KvEvent::MigratedIn { request, bytes },
            EvictionPolicy::Recompute => KvEvent::Recomputed { request, tokens },
        });
        Ok(events)
    }

    /// Remove a finished request, freeing its pages.
    pub fn release(&mut self, request: u64) {
        if let Some(e) = self.entries.remove(&request) {
            if e.resident {
                self.resident_pages -= e.pages;
            }
        }
    }

    /// Whether a request's KV is resident.
    pub fn is_resident(&self, request: u64) -> bool {
        self.entries
            .get(&request)
            .map(|e| e.resident)
            .unwrap_or(false)
    }

    /// Tokens of a request's resident KV, `None` when absent or
    /// swapped out. A parked conversation history is append-only, so a
    /// stale entry (parked by an earlier round) is a valid *prefix* of
    /// the current history — callers reusing it must credit this
    /// length, not the length they wish were resident.
    pub fn resident_tokens(&self, request: u64) -> Option<u64> {
        self.entries
            .get(&request)
            .filter(|e| e.resident)
            .map(|e| e.tokens)
    }

    /// Export the cache's dynamic state (LRU clock + entry table) for
    /// snapshotting. Entries are sorted by request id so the export is
    /// deterministic regardless of hash-map iteration order; each
    /// entry's `last_touch` stamp is unique (the clock is strictly
    /// increasing), so importing the list rebuilds the exact LRU order.
    pub fn export_entries(&self) -> (u64, Vec<KvEntrySnapshot>) {
        let mut entries: Vec<KvEntrySnapshot> = self
            .entries
            .iter()
            .map(|(id, e)| KvEntrySnapshot {
                request: *id,
                pages: e.pages,
                tokens: e.tokens,
                last_touch: e.last_touch,
                resident: e.resident,
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.request);
        (self.clock, entries)
    }

    /// Replace the cache's dynamic state with a previously exported
    /// one. Capacity, page size, and eviction policy are configuration
    /// and stay as constructed.
    pub fn import_entries(&mut self, clock: u64, entries: &[KvEntrySnapshot]) {
        self.clock = clock;
        self.entries.clear();
        self.resident_pages = 0;
        for s in entries {
            if s.resident {
                self.resident_pages += s.pages;
            }
            self.entries.insert(
                s.request,
                Entry {
                    pages: s.pages,
                    tokens: s.tokens,
                    last_touch: s.last_touch,
                    resident: s.resident,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity_tokens: u64, policy: EvictionPolicy) -> PagedKvCache {
        // 1 byte/token so capacities read directly in tokens.
        PagedKvCache::new(capacity_tokens, 16, 1, policy)
    }

    #[test]
    fn admit_and_release_round_trip() {
        let mut c = cache(1024, EvictionPolicy::Migrate);
        let ev = c.admit(1, 100).expect("fits");
        assert!(ev.is_empty());
        assert_eq!(c.resident_bytes(), 112); // 7 pages of 16
        assert_eq!(c.resident_tokens(1), Some(100));
        assert_eq!(c.resident_tokens(2), None);
        c.release(1);
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.resident_tokens(1), None);
    }

    #[test]
    fn oversized_request_rejected() {
        let mut c = cache(64, EvictionPolicy::Migrate);
        let err = c.admit(1, 100).expect_err("too big");
        assert!(matches!(err, KvCacheError::CapacityExceeded { .. }));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(3 * 16, EvictionPolicy::Migrate);
        c.admit(1, 16).expect("fits");
        c.admit(2, 16).expect("fits");
        c.admit(3, 16).expect("fits");
        // Touch request 1 so 2 becomes LRU.
        c.append(1, 0).expect("resident");
        let ev = c.admit(4, 16).expect("evicts");
        assert_eq!(
            ev,
            vec![KvEvent::MigratedOut {
                request: 2,
                bytes: 16
            }]
        );
        assert!(!c.is_resident(2));
        assert!(c.is_resident(1));
    }

    #[test]
    fn append_grows_pages_and_can_evict() {
        let mut c = cache(2 * 16, EvictionPolicy::Recompute);
        c.admit(1, 16).expect("fits");
        c.admit(2, 16).expect("fits");
        // Growing request 2 past its page forces request 1 out.
        let ev = c.append(2, 1).expect("resident");
        assert_eq!(
            ev,
            vec![KvEvent::Recomputed {
                request: 1,
                tokens: 16
            }]
        );
    }

    #[test]
    fn restore_migrate_vs_recompute() {
        for policy in [EvictionPolicy::Migrate, EvictionPolicy::Recompute] {
            // Admit 2, evicting 1; then restore 1 after 2 finishes.
            let mut c = cache(2 * 16, policy);
            c.admit(1, 32).expect("fits");
            let ev = c.admit(2, 16).expect("evicts 1");
            assert_eq!(ev.len(), 1);
            c.release(2);
            let ev = c.restore(1).expect("known request");
            match policy {
                EvictionPolicy::Migrate => {
                    assert!(matches!(
                        ev.last(),
                        Some(KvEvent::MigratedIn {
                            request: 1,
                            bytes: 32
                        })
                    ));
                }
                EvictionPolicy::Recompute => {
                    assert!(matches!(
                        ev.last(),
                        Some(KvEvent::Recomputed {
                            request: 1,
                            tokens: 32
                        })
                    ));
                }
            }
            assert!(c.is_resident(1));
        }
    }

    #[test]
    fn fragmentation_bounded_by_one_page_per_request() {
        let mut c = cache(1 << 20, EvictionPolicy::Migrate);
        for r in 0..50u64 {
            c.admit(r, 17).expect("fits"); // 2 pages, 15 slots wasted
        }
        let frag = c.fragmentation();
        assert!(frag > 0.0 && frag < 0.5, "got {frag}");
    }

    #[test]
    fn unknown_request_errors() {
        let mut c = cache(64, EvictionPolicy::Migrate);
        assert!(matches!(
            c.append(9, 1),
            Err(KvCacheError::UnknownRequest(9))
        ));
        assert!(matches!(c.restore(9), Err(KvCacheError::UnknownRequest(9))));
    }

    #[test]
    fn evict_one_walks_lru_order_and_drains() {
        let mut c = cache(4 * 16, EvictionPolicy::Migrate);
        c.admit(1, 16).expect("fits");
        c.admit(2, 16).expect("fits");
        c.admit(3, 16).expect("fits");
        c.append(1, 0).expect("touch 1 so 2 is LRU");
        assert_eq!(
            c.evict_one(),
            Some(KvEvent::MigratedOut {
                request: 2,
                bytes: 16
            })
        );
        assert_eq!(
            c.evict_one(),
            Some(KvEvent::MigratedOut {
                request: 3,
                bytes: 16
            })
        );
        assert_eq!(
            c.evict_one(),
            Some(KvEvent::MigratedOut {
                request: 1,
                bytes: 16
            })
        );
        assert_eq!(c.evict_one(), None);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn export_import_round_trips_lru_order() {
        let mut c = cache(3 * 16, EvictionPolicy::Migrate);
        c.admit(1, 16).expect("fits");
        c.admit(2, 16).expect("fits");
        c.admit(3, 16).expect("fits");
        c.append(1, 0).expect("touch 1 so 2 is LRU");
        let (clock, entries) = c.export_entries();
        let mut restored = cache(3 * 16, EvictionPolicy::Migrate);
        restored.import_entries(clock, &entries);
        assert_eq!(restored.resident_bytes(), c.resident_bytes());
        // Same LRU victim as the original would pick.
        assert_eq!(
            restored.evict_one(),
            Some(KvEvent::MigratedOut {
                request: 2,
                bytes: 16
            })
        );
        assert_eq!(restored.export_entries().0, clock, "evict keeps clock");
    }

    #[test]
    fn resident_bytes_never_exceed_capacity() {
        let mut c = cache(8 * 16, EvictionPolicy::Recompute);
        for r in 0..20u64 {
            c.admit(r, 1 + (r % 40)).expect("fits after eviction");
            assert!(c.resident_bytes() <= 8 * 16, "at request {r}");
        }
    }
}
