//! Criterion micro-benchmarks of the simulator's hot paths: the
//! command-level HBM streaming engine, kernel pricing, expert routing,
//! stage costing and the continuous-batching scheduler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use duplex::compute::kernel::GemmShape;
use duplex::compute::Engine;
use duplex::hbm::{AccessPath, BandwidthProfile, HbmGeometry, HbmTiming};
use duplex::model::ops::StageShape;
use duplex::model::{ExpertRouter, ModelConfig};
use duplex::sched::{Simulation, SimulationConfig, Workload};
use duplex::system::{SystemConfig, SystemExecutor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hbm_stream(c: &mut Criterion) {
    let geom = HbmGeometry::hbm3_8hi();
    let timing = HbmTiming::hbm3();
    let mut g = c.benchmark_group("hbm_stream_1MiB");
    for path in AccessPath::ALL {
        g.bench_function(format!("{path}"), |b| {
            b.iter(|| {
                duplex::hbm::stream::simulate_stream(&geom, &timing, path, black_box(1 << 20))
            })
        });
    }
    g.finish();

    c.bench_function("bandwidth_profile_calibrate", |b| {
        b.iter(|| BandwidthProfile::calibrate(&geom, &timing))
    });
}

fn bench_kernel_pricing(c: &mut Criterion) {
    let xpu = Engine::h100_xpu();
    let pim = Engine::logic_pim();
    let shape = GemmShape {
        m: 16,
        n: 14336,
        k: 4096,
    };
    let bytes = shape.weight_bytes(2);
    c.bench_function("gemm_cost_xpu", |b| {
        b.iter(|| xpu.gemm_cost(black_box(shape), bytes))
    });
    c.bench_function("gemm_cost_pim", |b| {
        b.iter(|| pim.gemm_cost(black_box(shape), bytes))
    });
}

fn bench_routing(c: &mut Criterion) {
    let router = ExpertRouter::uniform(64, 2);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("route_glam_2176_tokens", |b| {
        b.iter(|| router.route(&mut rng, black_box(2176)))
    });
}

fn bench_stage_cost(c: &mut Criterion) {
    let model = ModelConfig::mixtral_8x7b();
    let shape = StageShape::decode_only(&vec![2048u64; 64]);
    let mixed = StageShape::mixed(&vec![2048u64; 63], &[2048]);
    let mut g = c.benchmark_group("stage_cost");
    for cfg in [SystemConfig::gpu(4, 1), SystemConfig::duplex_pe_et(4, 1)] {
        let mut ex = SystemExecutor::new(cfg, model.clone(), 1);
        let name = ex.config().name.clone();
        g.bench_function(format!("{name}_decode64"), |b| {
            b.iter(|| ex.stage_cost(black_box(&shape)))
        });
        let mut ex2 = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model.clone(), 1);
        g.bench_function(format!("{name}_mixed64"), |b| {
            b.iter(|| ex2.stage_cost(black_box(&mixed)))
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let model = ModelConfig::mixtral_8x7b();
    c.bench_function("closed_loop_32reqs_gpu", |b| {
        b.iter_batched(
            || SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1),
            |mut ex| {
                let cfg = SimulationConfig {
                    max_batch: 16,
                    kv_capacity_bytes: ex.kv_capacity_bytes(),
                    kv_bytes_per_token: model.kv_bytes_per_token(),
                    ..Default::default()
                };
                Simulation::closed_loop(cfg, Workload::fixed(128, 16), 32).run(&mut ex)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_hbm_stream,
    bench_kernel_pricing,
    bench_routing,
    bench_stage_cost,
    bench_scheduler
);
criterion_main!(benches);
