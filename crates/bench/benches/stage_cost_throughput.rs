//! Criterion benches pinning the stage-pricing fast path: stages/sec
//! for decode-only, mixed, and MoE-heavy stage shapes, plus the fast
//! path against the per-request reference path on the same shape.
//! Contexts advance every iteration so the numbers include cold kernel
//! pricings, as in a real decode loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use duplex::model::ops::StageShape;
use duplex::model::ModelConfig;
use duplex::system::{SystemConfig, SystemExecutor};

fn advancing(ctx0: u64, batch: usize, prefill: Option<u64>) -> impl FnMut(u64) -> StageShape {
    move |stage| {
        let ctx = vec![ctx0 + stage; batch];
        match prefill {
            Some(p) => StageShape::mixed(&ctx, &[p]),
            None => StageShape::decode_only(&ctx),
        }
    }
}

fn bench_shape_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage_cost");
    let cases: [(&str, ModelConfig, SystemConfig, usize, Option<u64>); 3] = [
        (
            "decode_only_mixtral_b64",
            ModelConfig::mixtral_8x7b(),
            SystemConfig::duplex_pe_et(4, 1),
            64,
            None,
        ),
        (
            "mixed_mixtral_b64",
            ModelConfig::mixtral_8x7b(),
            SystemConfig::duplex_pe_et(4, 1),
            63,
            Some(2048),
        ),
        (
            "moe_heavy_glam_b128",
            ModelConfig::glam(),
            SystemConfig::duplex_pe_et(8, 1),
            128,
            None,
        ),
    ];
    for (name, model, system, batch, prefill) in cases {
        let mut ex = SystemExecutor::new(system, model, 7);
        let mut shape = advancing(2048, batch, prefill);
        let mut stage = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                stage += 1;
                ex.stage_cost(black_box(&shape(stage)))
            })
        });
    }
    g.finish();
}

fn bench_fast_vs_reference(c: &mut Criterion) {
    let model = ModelConfig::mixtral_8x7b();
    let mut g = c.benchmark_group("fast_vs_reference");
    let mut fast = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model.clone(), 7);
    let mut stage = 0u64;
    g.bench_function("grouped_fast_path", |b| {
        b.iter(|| {
            stage += 1;
            fast.stage_cost(black_box(&StageShape::decode_only(&vec![2048 + stage; 64])))
        })
    });
    let mut naive = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 7);
    let mut stage = 0u64;
    g.bench_function("per_request_reference", |b| {
        b.iter(|| {
            stage += 1;
            naive.stage_cost_reference(black_box(&StageShape::decode_only(&vec![2048 + stage; 64])))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shape_classes, bench_fast_vs_reference);
criterion_main!(benches);
