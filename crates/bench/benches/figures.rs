//! Criterion benchmarks of the figure-regeneration harnesses at quick
//! scale: how long does each paper experiment take to recompute?

use criterion::{criterion_group, criterion_main, Criterion};

use duplex::experiments::{self, Scale};

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.bench_function("fig08_edap", |b| b.iter(experiments::fig08_edap));
    g.bench_function("fig04_breakdown", |b| {
        b.iter(|| experiments::fig04_breakdown(&scale))
    });
    g.bench_function("table1", |b| b.iter(experiments::table1));
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
