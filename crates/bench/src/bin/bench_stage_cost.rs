//! Stage-pricing throughput benchmark: how many continuous-batching
//! stages per second can the executor price for the shape classes that
//! dominate the paper's sweeps?
//!
//! Two pricing paths are measured for each class:
//!
//! * **full** — `SystemExecutor::stage_cost(&StageShape)`: the grouped
//!   one-shot path, re-grouping the batch every stage;
//! * **delta** — `SystemExecutor::stage_cost_delta(&StageDelta)`: the
//!   incremental path, carrying batch state across stages and pricing
//!   pure-advance decode stages in O(1) (mixed stages always fall back
//!   to the full path, so the `mixed` class has no delta variant).
//!
//! Classes:
//!
//! * `decode_only` — Mixtral-8x7B, batch 64, contexts advancing from
//!   2048 (Duplex+PE+ET, the busiest Fig. 11 system);
//! * `mixed` — the same stage with one 2048-token prefill riding along;
//! * `moe_heavy` — GLaM (64 experts, 8-device node), batch 128.
//!
//! Contexts advance every stage, as in a real decode loop, so the
//! numbers include cold kernel pricings, not just cache hits. Results
//! print as a table and land in `BENCH_stage_cost.json` in the current
//! directory so CI can track the perf trajectory across PRs.

use std::time::Instant;

use duplex::model::ops::StageShape;
use duplex::model::ModelConfig;
use duplex::sched::StageDelta;
use duplex::system::{SystemConfig, SystemExecutor};
use duplex_bench::print_table;

struct ShapeClass {
    name: &'static str,
    model: ModelConfig,
    system: SystemConfig,
    batch: usize,
    start_ctx: u64,
    prefill: Option<u64>,
}

fn classes() -> Vec<ShapeClass> {
    vec![
        ShapeClass {
            name: "decode_only",
            model: ModelConfig::mixtral_8x7b(),
            system: SystemConfig::duplex_pe_et(4, 1),
            batch: 64,
            start_ctx: 2048,
            prefill: None,
        },
        ShapeClass {
            name: "mixed",
            model: ModelConfig::mixtral_8x7b(),
            system: SystemConfig::duplex_pe_et(4, 1),
            batch: 63,
            start_ctx: 2048,
            prefill: Some(2048),
        },
        ShapeClass {
            name: "moe_heavy",
            model: ModelConfig::glam(),
            system: SystemConfig::duplex_pe_et(8, 1),
            batch: 128,
            start_ctx: 1024,
            prefill: None,
        },
    ]
}

fn shape_at(class: &ShapeClass, stage: u64) -> StageShape {
    let ctx = vec![class.start_ctx + stage; class.batch];
    match class.prefill {
        Some(p) => StageShape::mixed(&ctx, &[p]),
        None => StageShape::decode_only(&ctx),
    }
}

/// Price `stages` advancing stages through the full path and return
/// stages/second.
fn measure_full(class: &ShapeClass, stages: u64) -> f64 {
    let mut ex = SystemExecutor::new(class.system.clone(), class.model.clone(), 7);
    // Warm up the executor (engine construction, first pricings).
    for s in 0..(stages / 10).max(1) {
        ex.stage_cost(&shape_at(class, s));
    }
    let start = Instant::now();
    for s in 0..stages {
        ex.stage_cost(&shape_at(class, s));
    }
    stages as f64 / start.elapsed().as_secs_f64()
}

/// Price `stages` advancing stages through the incremental delta path
/// (admit the cohort once, then pure advances) and return stages/s.
fn measure_delta(class: &ShapeClass, stages: u64) -> f64 {
    assert!(
        class.prefill.is_none(),
        "delta path is for decode-only classes"
    );
    let mut ex = SystemExecutor::new(class.system.clone(), class.model.clone(), 7);
    // Admit the cohort so it decodes from `start_ctx` onward, mirroring
    // the contexts the full-path measurement walks.
    let mut admit = StageDelta::start();
    admit.admit = vec![class.start_ctx - 1; class.batch];
    ex.stage_cost_delta(&admit);
    let advance = StageDelta::default();
    for _ in 0..(stages / 10).max(1) {
        ex.stage_cost_delta(&advance);
    }
    let start = Instant::now();
    for _ in 0..stages {
        ex.stage_cost_delta(&advance);
    }
    stages as f64 / start.elapsed().as_secs_f64()
}

fn json_escape_free(name: &str) -> &str {
    // Class names are static identifiers; assert rather than escape.
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn main() {
    let scale = duplex_bench::scale_from_args();
    let quick = scale == duplex::experiments::Scale::quick();
    let stages: u64 = if quick { 300 } else { 3000 };
    // The delta path is ~2 orders of magnitude faster; measure more
    // stages so the timed window stays meaningful.
    let delta_stages: u64 = if quick { 30_000 } else { 1_000_000 };

    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    let mut push = |name: String, class: &ShapeClass, sps: f64, n: u64| {
        rows.push(vec![
            name.clone(),
            class.model.name.clone(),
            class.system.name.clone(),
            class.batch.to_string(),
            format!("{sps:.0}"),
        ]);
        json_entries.push(format!(
            "    \"{}\": {{\"stages_per_sec\": {:.1}, \"model\": \"{}\", \"system\": \"{}\", \"batch\": {}, \"stages\": {}}}",
            json_escape_free(&name),
            sps,
            class.model.name,
            class.system.name,
            class.batch,
            n
        ));
    };
    for class in classes() {
        let sps = measure_full(&class, stages);
        push(class.name.to_string(), &class, sps, stages);
        if class.prefill.is_none() {
            let sps = measure_delta(&class, delta_stages);
            push(format!("{}_delta", class.name), &class, sps, delta_stages);
        }
    }
    print_table(
        "Stage-cost throughput (full vs incremental delta path)",
        &["Class", "Model", "System", "Batch", "stages/s"],
        &rows,
    );

    let json = format!(
        "{{\n  \"schema\": \"duplex-bench/stage-cost/v2\",\n  \"mode\": \"{}\",\n  \"classes\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "paper" },
        json_entries.join(",\n")
    );
    let path = "BENCH_stage_cost.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}
