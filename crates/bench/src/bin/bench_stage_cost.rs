//! Stage-pricing throughput benchmark: how many continuous-batching
//! stages per second can `SystemExecutor::stage_cost` price for the
//! three shape classes that dominate the paper's sweeps?
//!
//! * `decode_only` — Mixtral-8x7B, batch 64, contexts advancing from
//!   2048 (Duplex+PE+ET, the busiest Fig. 11 system);
//! * `mixed` — the same stage with one 2048-token prefill riding along;
//! * `moe_heavy` — GLaM (64 experts, 8-device node), batch 128.
//!
//! Contexts advance every stage, as in a real decode loop, so the
//! numbers include cold kernel pricings, not just cache hits. Results
//! print as a table and land in `BENCH_stage_cost.json` in the current
//! directory so CI can track the perf trajectory across PRs.

use std::time::Instant;

use duplex::model::ops::StageShape;
use duplex::model::ModelConfig;
use duplex::system::{SystemConfig, SystemExecutor};
use duplex_bench::print_table;

struct ShapeClass {
    name: &'static str,
    model: ModelConfig,
    system: SystemConfig,
    batch: usize,
    start_ctx: u64,
    prefill: Option<u64>,
}

fn classes() -> Vec<ShapeClass> {
    vec![
        ShapeClass {
            name: "decode_only",
            model: ModelConfig::mixtral_8x7b(),
            system: SystemConfig::duplex_pe_et(4, 1),
            batch: 64,
            start_ctx: 2048,
            prefill: None,
        },
        ShapeClass {
            name: "mixed",
            model: ModelConfig::mixtral_8x7b(),
            system: SystemConfig::duplex_pe_et(4, 1),
            batch: 63,
            start_ctx: 2048,
            prefill: Some(2048),
        },
        ShapeClass {
            name: "moe_heavy",
            model: ModelConfig::glam(),
            system: SystemConfig::duplex_pe_et(8, 1),
            batch: 128,
            start_ctx: 1024,
            prefill: None,
        },
    ]
}

fn shape_at(class: &ShapeClass, stage: u64) -> StageShape {
    let ctx = vec![class.start_ctx + stage; class.batch];
    match class.prefill {
        Some(p) => StageShape::mixed(&ctx, &[p]),
        None => StageShape::decode_only(&ctx),
    }
}

/// Price `stages` advancing stages and return stages/second.
fn measure(class: &ShapeClass, stages: u64) -> f64 {
    let mut ex = SystemExecutor::new(class.system.clone(), class.model.clone(), 7);
    // Warm up the executor (engine construction, first pricings).
    for s in 0..(stages / 10).max(1) {
        ex.stage_cost(&shape_at(class, s));
    }
    let start = Instant::now();
    for s in 0..stages {
        ex.stage_cost(&shape_at(class, s));
    }
    stages as f64 / start.elapsed().as_secs_f64()
}

fn json_escape_free(name: &str) -> &str {
    // Class names are static identifiers; assert rather than escape.
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn main() {
    let scale = duplex_bench::scale_from_args();
    let quick = scale == duplex::experiments::Scale::quick();
    let stages: u64 = if quick { 300 } else { 3000 };

    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    for class in classes() {
        let sps = measure(&class, stages);
        rows.push(vec![
            class.name.to_string(),
            class.model.name.clone(),
            class.system.name.clone(),
            class.batch.to_string(),
            format!("{sps:.0}"),
        ]);
        json_entries.push(format!(
            "    \"{}\": {{\"stages_per_sec\": {:.1}, \"model\": \"{}\", \"system\": \"{}\", \"batch\": {}}}",
            json_escape_free(class.name),
            sps,
            class.model.name,
            class.system.name,
            class.batch
        ));
    }
    print_table(
        &format!("Stage-cost throughput ({stages} stages per class)"),
        &["Class", "Model", "System", "Batch", "stages/s"],
        &rows,
    );

    let json = format!(
        "{{\n  \"schema\": \"duplex-bench/stage-cost/v1\",\n  \"mode\": \"{}\",\n  \"stages_per_class\": {},\n  \"classes\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "paper" },
        stages,
        json_entries.join(",\n")
    );
    let path = "BENCH_stage_cost.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}
