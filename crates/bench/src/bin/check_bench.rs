//! The CI benchmark-regression gate (see `duplex_bench::regression`).
//!
//! ```text
//! check_bench [--baseline ci/bench_baseline.json]
//!             [--threshold 0.30]
//!             [--report <name>=<path>]...
//!             [--self-test]
//!             [--write-baseline]
//! ```
//!
//! Without `--report` flags it gates the default reports
//! (`BENCH_stage_cost.json`, `BENCH_sim.json`, `BENCH_scenarios.json`,
//! `BENCH_cluster.json`)
//! from the working directory; reports whose file is absent or that
//! have no baseline section are skipped. Exits 1 when any baselined
//! metric drifts more than the threshold past its baseline —
//! throughput metrics by dropping, latency metrics (TBT/T2FT tails)
//! and cost metrics (`replica_seconds`, `scale_up_lag_s`) by rising —
//! printing a one-line-per-metric table either way.
//!
//! `--self-test` proves the gate itself has teeth: the baseline
//! (defaulting to `ci/bench_regression_fixture.json`) holds
//! deliberately impossible values plus a `_self_test.must_trip` list
//! of `{"key", "direction"}` declarations, and the mode verifies every
//! declared metric was gated, gates in the declared direction, and
//! tripped — exiting 1 and listing each miss otherwise. The fixture
//! file is the single source of truth for what must trip; adding a
//! metric class needs no workflow change.
//!
//! `--write-baseline` regenerates the baseline file (default
//! `ci/bench_baseline.json`) from the current reports instead of
//! gating: run the `--quick` benches, then this, and commit the diff.
//! Headroom rules live in `regression::write_baseline` — wall-clock
//! throughputs floored at 45% of measured, `wall_s` ceilings at 50x,
//! deterministic simulated-time metrics recorded exactly.

use duplex_bench::regression::{
    gate_reports, render_gate, run_self_test, write_baseline, DEFAULT_THRESHOLD,
};

fn usage(bin: &str) -> ! {
    eprintln!(
        "usage: {bin} [--baseline <path>] [--threshold <frac>] [--report <name>=<path>]... \
         [--self-test] [--write-baseline]"
    );
    std::process::exit(2);
}

fn main() {
    let bin = std::env::args()
        .next()
        .unwrap_or_else(|| "check_bench".into());
    let mut baseline_path: Option<String> = None;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut report_specs: Vec<(String, String)> = Vec::new();
    let mut self_test = false;
    let mut write_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = Some(args.next().unwrap_or_else(|| usage(&bin))),
            "--threshold" => {
                let raw = args.next().unwrap_or_else(|| usage(&bin));
                threshold = raw.parse().unwrap_or_else(|_| usage(&bin));
                if !(0.0..1.0).contains(&threshold) {
                    eprintln!("error: threshold must be in [0, 1)");
                    std::process::exit(2);
                }
            }
            "--report" => {
                let spec = args.next().unwrap_or_else(|| usage(&bin));
                let (name, path) = spec.split_once('=').unwrap_or_else(|| usage(&bin));
                report_specs.push((name.to_string(), path.to_string()));
            }
            "--self-test" => self_test = true,
            "--write-baseline" => write_mode = true,
            _ => usage(&bin),
        }
    }
    if self_test && write_mode {
        eprintln!("error: --self-test and --write-baseline are mutually exclusive");
        std::process::exit(2);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| {
        if self_test {
            "ci/bench_regression_fixture.json".into()
        } else {
            "ci/bench_baseline.json".into()
        }
    });
    if report_specs.is_empty() {
        report_specs = [
            ("BENCH_stage_cost", "BENCH_stage_cost.json"),
            ("BENCH_sim", "BENCH_sim.json"),
            ("BENCH_scenarios", "BENCH_scenarios.json"),
            ("BENCH_cluster", "BENCH_cluster.json"),
        ]
        .into_iter()
        .map(|(n, p)| (n.to_string(), p.to_string()))
        .collect();
    }

    let mut reports: Vec<(&str, String)> = Vec::new();
    for (name, path) in &report_specs {
        match std::fs::read_to_string(path) {
            Ok(text) => reports.push((name.as_str(), text)),
            Err(e) => println!("skipping {name}: {path}: {e}"),
        }
    }

    if write_mode {
        // The baseline must cover every report it is regenerated from:
        // a silently absent report file would drop its whole section.
        if reports.len() != report_specs.len() {
            eprintln!("error: --write-baseline needs every report file present");
            std::process::exit(2);
        }
        let text = write_baseline(&reports).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        std::fs::write(&baseline_path, &text).unwrap_or_else(|e| {
            eprintln!("error: writing {baseline_path}: {e}");
            std::process::exit(2);
        });
        println!(
            "wrote {baseline_path} ({} bytes) from {} report(s)",
            text.len(),
            reports.len()
        );
        return;
    }

    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("error: reading baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    if self_test {
        match run_self_test(&baseline, &reports, threshold) {
            Ok(outcome) => {
                print!("{}", outcome.table);
                if outcome.failures.is_empty() {
                    println!("gate self-test passed: every declared (metric, direction) tripped");
                } else {
                    for miss in &outcome.failures {
                        eprintln!("self-test miss: {miss}");
                    }
                    eprintln!(
                        "gate self-test FAILED: {} of the fixture's declared trips did not fire",
                        outcome.failures.len()
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    match gate_reports(&baseline, &reports) {
        Ok(comparisons) if comparisons.is_empty() => {
            println!("no baselined metrics found; nothing to gate");
        }
        Ok(comparisons) => {
            let (table, failed) = render_gate(&comparisons, threshold);
            print!("{table}");
            if failed {
                eprintln!(
                    "benchmark regression: a metric drifted more than {:.0}% past its \
                     baseline (throughput below, latency above)",
                    threshold * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "benchmark gate passed (threshold {:.0}%)",
                threshold * 100.0
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
