//! The CI benchmark-regression gate (see `duplex_bench::regression`).
//!
//! ```text
//! check_bench [--baseline ci/bench_baseline.json]
//!             [--threshold 0.30]
//!             [--report <name>=<path>]...
//! ```
//!
//! Without `--report` flags it gates the default reports
//! (`BENCH_stage_cost.json`, `BENCH_sim.json`, `BENCH_scenarios.json`,
//! `BENCH_cluster.json`)
//! from the working directory; reports whose file is absent or that
//! have no baseline section are skipped. Exits 1 when any baselined
//! metric drifts more than the threshold past its baseline —
//! throughput metrics by dropping, latency metrics (TBT/T2FT tails) by
//! rising — printing a one-line-per-metric table either way.

use duplex_bench::regression::{gate_reports, render_gate, DEFAULT_THRESHOLD};

fn usage(bin: &str) -> ! {
    eprintln!("usage: {bin} [--baseline <path>] [--threshold <frac>] [--report <name>=<path>]...");
    std::process::exit(2);
}

fn main() {
    let bin = std::env::args()
        .next()
        .unwrap_or_else(|| "check_bench".into());
    let mut baseline_path = "ci/bench_baseline.json".to_string();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut report_specs: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().unwrap_or_else(|| usage(&bin)),
            "--threshold" => {
                let raw = args.next().unwrap_or_else(|| usage(&bin));
                threshold = raw.parse().unwrap_or_else(|_| usage(&bin));
                if !(0.0..1.0).contains(&threshold) {
                    eprintln!("error: threshold must be in [0, 1)");
                    std::process::exit(2);
                }
            }
            "--report" => {
                let spec = args.next().unwrap_or_else(|| usage(&bin));
                let (name, path) = spec.split_once('=').unwrap_or_else(|| usage(&bin));
                report_specs.push((name.to_string(), path.to_string()));
            }
            _ => usage(&bin),
        }
    }
    if report_specs.is_empty() {
        report_specs = [
            ("BENCH_stage_cost", "BENCH_stage_cost.json"),
            ("BENCH_sim", "BENCH_sim.json"),
            ("BENCH_scenarios", "BENCH_scenarios.json"),
            ("BENCH_cluster", "BENCH_cluster.json"),
        ]
        .into_iter()
        .map(|(n, p)| (n.to_string(), p.to_string()))
        .collect();
    }

    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("error: reading baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let mut reports: Vec<(&str, String)> = Vec::new();
    for (name, path) in &report_specs {
        match std::fs::read_to_string(path) {
            Ok(text) => reports.push((name.as_str(), text)),
            Err(e) => println!("skipping {name}: {path}: {e}"),
        }
    }

    match gate_reports(&baseline, &reports) {
        Ok(comparisons) if comparisons.is_empty() => {
            println!("no baselined metrics found; nothing to gate");
        }
        Ok(comparisons) => {
            let (table, failed) = render_gate(&comparisons, threshold);
            print!("{table}");
            if failed {
                eprintln!(
                    "benchmark regression: a metric drifted more than {:.0}% past its \
                     baseline (throughput below, latency above)",
                    threshold * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "benchmark gate passed (threshold {:.0}%)",
                threshold * 100.0
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
