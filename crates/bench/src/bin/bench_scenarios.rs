//! Scenario-suite benchmark: runs the workload scenarios (bursty
//! on/off traffic, diurnal rate curve, multi-turn chat with KV reuse,
//! SLO-tiered mix, recorded-trace replay) end to end — scheduler,
//! policy, KV accounting and incremental stage pricing — and reports
//! both serving metrics (SLO attainment, goodput, prefix-reuse rate)
//! and harness throughput (simulated stages per second of wall clock).
//!
//! Results print as a table and land in `BENCH_scenarios.json` next to
//! `BENCH_stage_cost.json` / `BENCH_sim.json` so CI tracks the
//! scenario path too.

use std::time::Instant;

use duplex::experiments::{run_scenario, scenario_suite, Scale};
use duplex::model::ModelConfig;
use duplex::sched::PolicyKind;
use duplex::system::SystemConfig;
use duplex_bench::print_table;

fn main() {
    let scale = duplex_bench::scale_from_args();
    let quick = scale == Scale::quick();
    let model = ModelConfig::mixtral_8x7b();
    let system = SystemConfig::duplex_pe_et(4, 1);
    let batch = 64usize;

    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    for scenario in scenario_suite(&scale, &model, &system, batch) {
        // The policy that matches the scenario's intent: the
        // near-saturation trio maps by name to its namesake policy
        // (shed vs preempt vs preempt-mux, same traffic — the baseline
        // pins their attainment spread), EDF over the tiered mix, FCFS
        // elsewhere.
        let kind = if scenario.name.contains("preempt") {
            PolicyKind::Preempt
        } else if scenario.name.contains("multiplex") {
            PolicyKind::Multiplex
        } else if scenario.name.contains("shed") {
            PolicyKind::ShedBatchTier
        } else if scenario.tiers.is_empty() {
            PolicyKind::Fcfs
        } else {
            PolicyKind::PriorityTiers
        };
        let name = scenario.name.clone();
        let tiered = !scenario.tiers.is_empty();
        let mut policy = kind.build();
        let start = Instant::now();
        let report = run_scenario(&model, &system, scenario, policy.as_mut(), batch);
        let wall_s = start.elapsed().as_secs_f64();
        let stages = report.stage_stats.stages;
        let stages_per_sec = stages as f64 / wall_s;
        let tbt_p99_ms = report.tbt().p99 * 1e3;
        rows.push(vec![
            name.clone(),
            kind.name().into(),
            report.completed.len().to_string(),
            stages.to_string(),
            format!("{wall_s:.3}"),
            format!("{stages_per_sec:.0}"),
            format!("{:.0}", report.generation_throughput()),
            format!("{tbt_p99_ms:.2}"),
            if tiered {
                format!("{:.3}", report.slo_attainment())
            } else {
                "-".into()
            },
            if tiered {
                format!("{:.0}", report.goodput_tokens_per_s())
            } else {
                "-".into()
            },
            format!("{:.3}", report.kv_reuse.reuse_fraction()),
        ]);
        // Per-tier TBT tails make prefill-induced spikes visible per
        // service class (simulated time: seed-deterministic, so the CI
        // latency gate can pin them).
        let tier_tails = if tiered {
            let mut tails: Vec<String> = report
                .slo
                .tiers
                .iter()
                .map(|t| format!("\"tier_{}_tbt_p99_ms\": {:.4}", t.name, t.tbt_p99_s() * 1e3))
                .collect();
            // The per-tier attainment the preemption gate watches:
            // interactive is the tier preemption exists to protect.
            if let Some(t) = report.slo.tiers.iter().find(|t| t.name == "interactive") {
                tails.push(format!(
                    "\"tier_interactive_attainment\": {:.4}",
                    t.attainment()
                ));
            }
            format!("{}, ", tails.join(", "))
        } else {
            String::new()
        };
        // Preemption accounting (all zeros under non-preemptive
        // policies; zero-valued metrics never enter the baseline).
        let preempt = format!(
            "\"preemptions\": {}, \"paused_time_s\": {:.6}, ",
            report.preempt.preemptions, report.preempt.paused_time_s
        );
        json_entries.push(format!(
            "    \"{}\": {{\"stages_per_sec\": {:.1}, \"wall_s\": {:.4}, \"stages\": {}, \"completed\": {}, \"sim_tokens_per_sec\": {:.1}, \"tbt_p99_ms\": {:.4}, {}{}\"slo_attainment\": {:.4}, \"goodput_tokens_per_s\": {:.1}, \"kv_reuse_fraction\": {:.4}, \"policy\": \"{}\", \"model\": \"{}\", \"system\": \"{}\", \"batch\": {}}}",
            name,
            stages_per_sec,
            wall_s,
            stages,
            report.completed.len(),
            report.generation_throughput(),
            tbt_p99_ms,
            tier_tails,
            preempt,
            report.slo_attainment(),
            report.goodput_tokens_per_s(),
            report.kv_reuse.reuse_fraction(),
            kind.name(),
            model.name,
            system.name,
            batch
        ));
    }
    print_table(
        "Scenario suite (scheduler + policy + KV reuse + incremental pricing)",
        &[
            "Scenario",
            "Policy",
            "Done",
            "Stages",
            "Wall s",
            "stages/s",
            "sim tok/s",
            "TBT p99 ms",
            "SLO att.",
            "Goodput",
            "KV reuse",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"schema\": \"duplex-bench/scenarios/v3\",\n  \"mode\": \"{}\",\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "paper" },
        json_entries.join(",\n")
    );
    let path = "BENCH_scenarios.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}
