//! Fig. 5: (a) decoding-only stage ratio, (b) heterogeneous-system
//! latency vs the GPU system, (c) hetero throughput under the KV
//! capacity limit.

use duplex::experiments::{fig05_hetero_latency, fig05_hetero_throughput, fig05_stage_ratio};
use duplex_bench::{ms, print_table, ratio, scale_from_args};

fn main() {
    let scale = scale_from_args();

    let rows: Vec<Vec<String>> = fig05_stage_ratio(&scale)
        .into_iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                r.lin.to_string(),
                r.lout.to_string(),
                ratio(r.decode_only_fraction),
                ratio(1.0 - r.decode_only_fraction),
            ]
        })
        .collect();
    print_table(
        "Fig. 5(a): stage-type ratio, Mixtral on GPU",
        &["Batch", "Lin", "Lout", "Decode-only", "Mixed"],
        &rows,
    );

    let lat = fig05_hetero_latency(&scale);
    let mut rows = Vec::new();
    for pair in lat.chunks(2) {
        let (gpu, het) = (&pair[0], &pair[1]);
        rows.push(vec![
            gpu.lin.to_string(),
            gpu.lout.to_string(),
            ratio(het.tbt[0] / gpu.tbt[0]),
            ratio(het.tbt[1] / gpu.tbt[1]),
            ratio(het.tbt[2] / gpu.tbt[2]),
            ratio(het.t2ft_p50 / gpu.t2ft_p50),
            ratio(het.e2e_p50 / gpu.e2e_p50),
        ]);
    }
    print_table(
        "Fig. 5(b): hetero latency normalized to 4-GPU (Mixtral, batch 32)",
        &["Lin", "Lout", "TBT p50", "TBT p90", "TBT p99", "T2FT p50", "E2E p50"],
        &rows,
    );

    let rows: Vec<Vec<String>> = fig05_hetero_throughput(&scale)
        .into_iter()
        .map(|r| {
            vec![
                r.lin.to_string(),
                r.lout.to_string(),
                ratio(r.normalized),
                ratio(r.normalized_no_capacity),
                format!("{:.0}", r.hetero_mean_batch),
            ]
        })
        .collect();
    print_table(
        "Fig. 5(c): hetero throughput normalized to GPU (Mixtral, batch 128)",
        &["Lin", "Lout", "Throughput", "No-capacity-limit", "Hetero batch"],
        &rows,
    );
    let _ = ms(0.0);
}
