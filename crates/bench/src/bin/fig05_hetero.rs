//! Fig. 5: (a) decoding-only stage ratio, (b) heterogeneous-system
//! latency vs the GPU system, (c) hetero throughput under the KV
//! capacity limit.

fn main() {
    duplex_bench::reports::fig05(&duplex_bench::scale_from_args());
}
