//! Fig. 14: Duplex vs Bank-PIM vs GPU across model classes: Mixtral
//! (MoE + GQA), Llama3 (dense GQA), OPT (dense MHA).

use duplex::experiments::fig14_bankpim;
use duplex_bench::{print_table, ratio, scale_from_args};

fn main() {
    let rows = fig14_bankpim(&scale_from_args());
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.model,
                r.batch.to_string(),
                format!("({}, {})", r.lin, r.lout),
                r.system,
                format!("{:.0}", r.tokens_per_s),
                ratio(r.normalized),
            ]
        })
        .collect();
    print_table(
        "Fig. 14: throughput normalized to GPU (MoE/GQA/MHA model classes)",
        &["Model", "Batch", "(Lin, Lout)", "System", "tokens/s", "Normalized"],
        &table,
    );
}
