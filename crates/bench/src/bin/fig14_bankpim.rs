//! Fig. 14: Duplex vs Bank-PIM vs GPU across model classes: Mixtral
//! (MoE + GQA), Llama3 (dense GQA), OPT (dense MHA).

fn main() {
    duplex_bench::reports::fig14(&duplex_bench::scale_from_args());
}
