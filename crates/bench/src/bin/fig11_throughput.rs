//! Fig. 11: normalized throughput of GPU / 2xGPU / Duplex / Duplex+PE /
//! Duplex+PE+ET on Mixtral, GLaM and Grok1.

fn main() {
    duplex_bench::reports::fig11(&duplex_bench::scale_from_args());
}
