//! Fig. 11: normalized throughput of GPU / 2xGPU / Duplex / Duplex+PE /
//! Duplex+PE+ET on Mixtral, GLaM and Grok1.

use duplex::experiments::fig11_throughput;
use duplex_bench::{print_table, ratio, scale_from_args};

fn main() {
    let rows = fig11_throughput(&scale_from_args());
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.model,
                r.batch.to_string(),
                format!("({}, {})", r.lin, r.lout),
                r.system,
                format!("{:.0}", r.tokens_per_s),
                ratio(r.normalized),
            ]
        })
        .collect();
    print_table(
        "Fig. 11: throughput normalized to the GPU system",
        &["Model", "Batch", "(Lin, Lout)", "System", "tokens/s", "Normalized"],
        &table,
    );
}
