//! Sec. VII-E: area overhead of the Logic-PIM stack components.

use duplex::compute::AreaModel;
use duplex_bench::print_table;

fn main() {
    let a = AreaModel::micro24();
    let rows = vec![
        vec!["32 GEMM modules (512 MACs + 8 KB buffer each)".to_string(), format!("{:.2}", a.logic_pim_gemm_mm2)],
        vec!["2 x 1 MB input/temporal buffers".to_string(), format!("{:.2}", a.logic_pim_buffers_mm2)],
        vec!["Softmax unit (cmp tree, exp, dividers, 128 KB)".to_string(), format!("{:.2}", a.logic_pim_softmax_mm2)],
        vec!["Added TSVs (4x per channel, 22 um pitch)".to_string(), format!("{:.2}", a.logic_pim_tsv_mm2)],
        vec!["Total per Logic-PIM stack".to_string(), format!("{:.2}", a.logic_pim_total_mm2())],
        vec![
            "Fraction of 121 mm^2 HBM3 logic die".to_string(),
            format!("{:.2}%", 100.0 * a.logic_pim_overhead_fraction()),
        ],
    ];
    print_table("Sec. VII-E: Logic-PIM area overhead (mm^2)", &["Component", "Area"], &rows);
}
