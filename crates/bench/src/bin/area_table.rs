//! Sec. VII-E: area overhead of the Logic-PIM stack components.

fn main() {
    let _ = duplex_bench::scale_from_args();
    duplex_bench::reports::area_table();
}
