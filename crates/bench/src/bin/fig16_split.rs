//! Fig. 16: Duplex vs Duplex-Split (Splitwise-style prefill/decode
//! disaggregation) on Mixtral, batch 128.

fn main() {
    duplex_bench::reports::fig16(&duplex_bench::scale_from_args());
}
