//! Fig. 16: Duplex vs Duplex-Split (Splitwise-style prefill/decode
//! disaggregation) on Mixtral, batch 128.

use duplex::experiments::fig16_split;
use duplex_bench::{ms, print_table, ratio, scale_from_args};

fn main() {
    let rows = fig16_split(&scale_from_args());
    let mut table = Vec::new();
    for pair in rows.chunks(2) {
        let (dup, split) = (&pair[0], &pair[1]);
        for r in [dup, split] {
            table.push(vec![
                format!("({}, {})", r.lin, r.lout),
                r.system.clone(),
                ms(r.tbt[0]),
                ms(r.tbt[1]),
                ms(r.tbt[2]),
                format!("{:.3}", r.t2ft_p50),
                format!("{:.3}", r.e2e_p50),
                ratio(r.throughput / dup.throughput),
            ]);
        }
    }
    print_table(
        "Fig. 16: Duplex vs Duplex-Split (TBT ms, T2FT/E2E s, throughput normalized)",
        &["(Lin, Lout)", "System", "TBT p50", "TBT p90", "TBT p99", "T2FT p50", "E2E p50", "Tput"],
        &table,
    );
}
