//! Fig. 15: per-token energy breakdown (FC / attention / MoE, DRAM vs
//! compute) of GPU vs Duplex.

use duplex::experiments::fig15_energy;
use duplex_bench::{mj, print_table, ratio, scale_from_args};

fn main() {
    let rows = fig15_energy(&scale_from_args());
    // Normalize each (model, batch, lengths) pair to its GPU total.
    let mut table = Vec::new();
    for pair in rows.chunks(2) {
        let (gpu, dup) = (&pair[0], &pair[1]);
        for r in [gpu, dup] {
            table.push(vec![
                r.model.clone(),
                r.batch.to_string(),
                format!("({}, {})", r.lin, r.lout),
                r.system.clone(),
                mj(r.buckets_j[0]),
                mj(r.buckets_j[1]),
                mj(r.buckets_j[2]),
                mj(r.buckets_j[3]),
                mj(r.buckets_j[4]),
                mj(r.buckets_j[5]),
                ratio(r.total_j / gpu.total_j),
            ]);
        }
    }
    print_table(
        "Fig. 15: energy per generated token (mJ; last column normalized to GPU)",
        &[
            "Model", "Batch", "(Lin, Lout)", "System", "FC-D", "FC-C", "Att-D", "Att-C",
            "MoE-D", "MoE-C", "Norm",
        ],
        &table,
    );
}
