//! Fig. 15: per-token energy breakdown (FC / attention / MoE, DRAM vs
//! compute) of GPU vs Duplex.

fn main() {
    duplex_bench::reports::fig15(&duplex_bench::scale_from_args());
}
