//! Cluster-serving benchmark: runs the multi-replica fleets of the
//! cluster suite (a Grok-scale multi-turn + SLO-tiered chat fleet and
//! a heterogeneous Mixtral fleet) under every shipped router —
//! round-robin, least-outstanding-work, session-affinity — end to end:
//! global arrival stream, router placement, per-replica continuous
//! batching with parked-KV reuse, and the incremental stage fast path
//! on every replica.
//!
//! Reports both fleet serving metrics (throughput, SLO attainment,
//! fleet TBT p99 from merged digests, KV-reuse fraction, load
//! imbalance) and harness throughput (simulated stages per second of
//! wall clock). Results print as a table and land in
//! `BENCH_cluster.json` next to the other `BENCH_*.json` reports so
//! the CI regression gate tracks the cluster path too: entries are
//! keyed `<fleet>_<router>`, throughput metrics gate downward and the
//! seed-deterministic `tbt_p99_ms` gates upward.

use std::time::Instant;

use duplex::experiments::{cluster_suite, run_cluster, ClusterRow};
use duplex::sched::RouterKind;
use duplex_bench::print_table;

fn main() {
    let scale = duplex_bench::scale_from_args();
    let quick = scale == duplex::experiments::Scale::quick();

    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    for spec in cluster_suite(&scale) {
        for kind in RouterKind::ALL {
            let mut router = kind.build();
            let start = Instant::now();
            let report = run_cluster(&spec, router.as_mut());
            let wall_s = start.elapsed().as_secs_f64();
            let row = ClusterRow::of(&spec, kind.name(), &report);
            let stages_per_sec = row.stages as f64 / wall_s;
            let tbt_p99_ms = row.tbt_p99 * 1e3;
            rows.push(vec![
                row.cluster.clone(),
                row.router.clone(),
                row.replicas.to_string(),
                row.completed.to_string(),
                row.stages.to_string(),
                format!("{wall_s:.3}"),
                format!("{stages_per_sec:.0}"),
                format!("{:.0}", row.throughput),
                format!("{tbt_p99_ms:.2}"),
                if row.tiered {
                    format!("{:.3}", row.interactive_attainment)
                } else {
                    "-".into()
                },
                format!("{:.3}", row.kv_reuse_fraction),
                format!("{:.2}", row.load_imbalance),
            ]);
            let tiered_metrics = if row.tiered {
                format!(
                    "\"slo_attainment\": {:.4}, \"interactive_attainment\": {:.4}, \"goodput_tokens_per_s\": {:.1}, ",
                    row.attainment, row.interactive_attainment, row.goodput
                )
            } else {
                String::new()
            };
            json_entries.push(format!(
                "    \"{}_{}\": {{\"stages_per_sec\": {:.1}, \"wall_s\": {:.4}, \"stages\": {}, \"completed\": {}, \"replicas\": {}, \"sim_tokens_per_sec\": {:.1}, \"tbt_p99_ms\": {:.4}, {}\"kv_reuse_fraction\": {:.4}, \"load_imbalance\": {:.4}, \"policy\": \"{}\", \"model\": \"{}\", \"batch\": {}}}",
                row.cluster,
                kind.name().replace('-', "_"),
                stages_per_sec,
                wall_s,
                row.stages,
                row.completed,
                row.replicas,
                row.throughput,
                tbt_p99_ms,
                tiered_metrics,
                row.kv_reuse_fraction,
                row.load_imbalance,
                spec.policy.name(),
                spec.model.name,
                spec.batch
            ));
        }
    }
    print_table(
        "Cluster suite (router x fleet; global stream, per-replica KV, delta pricing)",
        &[
            "Cluster",
            "Router",
            "Repl",
            "Done",
            "Stages",
            "Wall s",
            "stages/s",
            "sim tok/s",
            "TBT p99 ms",
            "Int. att.",
            "KV reuse",
            "Imbal",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"schema\": \"duplex-bench/cluster/v1\",\n  \"mode\": \"{}\",\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "paper" },
        json_entries.join(",\n")
    );
    let path = "BENCH_cluster.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}
