//! Cluster-serving benchmark: runs the multi-replica fleets of the
//! cluster suite (a Grok-scale multi-turn + SLO-tiered chat fleet and
//! a heterogeneous Mixtral fleet) under every shipped router —
//! round-robin, least-outstanding-work, session-affinity — end to end:
//! global arrival stream, router placement, per-replica continuous
//! batching with parked-KV reuse, and the incremental stage fast path
//! on every replica.
//!
//! Every (fleet, router) pair runs twice: once on the serial oracle
//! (one replica window at a time, in index order) and once on the
//! parallel clock-merge path (replica windows stepped concurrently on
//! the vendored rayon pool; pin the worker count with
//! `DUPLEX_THREADS`). The two reports are asserted byte-identical —
//! the clock-merge invariant — so the runs differ only in wall clock,
//! reported as `serial_wall_s` / `wall_s` and the harness-throughput
//! pair `serial_fleet_stages_per_s` / `fleet_stages_per_s` (simulated
//! fleet stages per second of wall clock).
//!
//! Also exercises pause/resume: the Grok fleet is paused mid-run, the
//! snapshot is written to `BENCH_cluster_snapshot.json` (the CI
//! artifact), parsed back, and resumed — the resumed report must equal
//! the uninterrupted one bit for bit.
//!
//! Fleet serving metrics (throughput, SLO attainment, fleet TBT p99
//! from merged digests, KV-reuse fraction, load imbalance) land with
//! the timing numbers in `BENCH_cluster.json` next to the other
//! `BENCH_*.json` reports so the CI regression gate tracks the cluster
//! path too: entries are keyed `<fleet>_<router>`,
//! `fleet_stages_per_s` gates downward and the wall-clock / simulated
//! latency metrics (`*wall_s`, `tbt_p99_ms`) gate upward.
//!
//! The `grok_failover` fleet runs its scripted crash + drain under
//! every router and its entries additionally carry the recovery
//! metrics — `recovery_time_s` (gates upward), and
//! `fault_interactive_attainment`, the during-failure interactive SLO
//! attainment (gates downward) — plus the ungated bookkeeping counts
//! `requests_lost`, `retries_issued`, `kv_bytes_migrated`.
//!
//! The `grok_diurnal_autoscale_*` trio (the elastic fleet and its two
//! static goalposts, least-outstanding-work router only) rides the
//! same loop: every entry carries `replica_seconds` (billable
//! provisioned time, gates upward) and the elastic entry adds
//! `scale_ups` / `scale_downs` (bookkeeping) and `scale_up_lag_s`
//! (worst detection + provisioning lag, gates upward); its
//! `interactive_attainment` gates downward like any tiered fleet's.
//!
//! The `grok_long_prefill_*` trio pins the disaggregation claim:
//! colocated, adaptive-chunked and 2+2 prefill/decode pool-split
//! fleets under one long-prefill workload, least-outstanding-work
//! router built from the fleet-derived `ClusterContext`
//! (`ClusterSpec::router_context`). Every entry carries `t2ft_p50_ms`
//! (gates upward) alongside the usual `tbt_p99_ms`, and the split
//! entry adds the ungated bookkeeping counts `handoffs`,
//! `kv_bytes_shipped` and `reprefills`.

use std::time::Instant;

use duplex::experiments::{build_cluster, run_cluster_with, ClusterRow, ClusterSpec};
use duplex::sched::{ClusterConfig, ClusterSnapshot, RouterKind};
use duplex_bench::print_table;

/// Pause the fleet at 40% of its simulated span, push the snapshot
/// through the JSON wire format, resume, and demand the report the
/// uninterrupted run produced. Returns (snapshot JSON, pause time).
fn snapshot_roundtrip(spec: &ClusterSpec, full_time_s: f64) -> (String, f64) {
    let kind = RouterKind::ALL[0];
    let stop_s = 0.4 * full_time_s;
    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = kind.build();
    let snapshot = sim
        .run_until(router.as_mut(), &mut policies, &mut executors, stop_s)
        .snapshot()
        .unwrap_or_else(|| panic!("{}: the 40% bound lands mid-run", spec.name));
    let text = snapshot.to_json();
    let restored = ClusterSnapshot::from_json(&text)
        .unwrap_or_else(|e| panic!("{}: snapshot does not parse back: {e}", spec.name));
    assert_eq!(restored, snapshot, "snapshot JSON round-trip is lossless");

    let (sim, mut fresh_policies, mut fresh_executors) = build_cluster(spec);
    let mut router = kind.build();
    let resumed = sim
        .resume(
            &restored,
            router.as_mut(),
            &mut fresh_policies,
            &mut fresh_executors,
        )
        .unwrap_or_else(|e| panic!("{}: snapshot rejected at resume: {e}", spec.name));
    let full = run_cluster_with(spec, kind.build().as_mut(), ClusterConfig::default());
    assert_eq!(
        resumed, full,
        "{}: resumed report must equal the uninterrupted run",
        spec.name
    );
    (text, snapshot.taken_at_s())
}

fn main() {
    let scale = duplex_bench::scale_from_args();
    let quick = scale == duplex::experiments::Scale::quick();
    let threads = ClusterConfig::default().effective_threads();

    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    let mut grok_time_s = None;
    let suite = duplex::experiments::cluster_suite(&scale);
    let drill = duplex::experiments::autoscale_drill(&scale);
    let disagg = duplex::experiments::grok_disagg(&scale);
    // Suite fleets run under every router; the autoscale and
    // disaggregation drills' three variants each compare *fleet
    // shapes*, so they pin one router. The disagg trio additionally
    // builds it from the fleet-derived context so the placement
    // estimates match the interconnect it prices.
    let mut points: Vec<(&ClusterSpec, RouterKind, bool)> = Vec::new();
    for spec in &suite {
        for kind in RouterKind::ALL {
            points.push((spec, kind, false));
        }
    }
    for spec in &drill {
        points.push((spec, RouterKind::LeastOutstandingWork, false));
    }
    for spec in &disagg {
        points.push((spec, RouterKind::LeastOutstandingWork, true));
    }
    for (spec, kind, fleet_ctx) in points {
        {
            // Fleet construction (executor builds, capacity probes)
            // stays outside the timed region: the metric is stepping
            // throughput, not setup cost.
            let build_router = || {
                if fleet_ctx {
                    kind.build_with(&spec.router_context())
                } else {
                    kind.build()
                }
            };
            let (sim, mut policies, mut executors) = build_cluster(spec);
            let sim = sim.with_config(ClusterConfig::serial());
            let mut router = build_router();
            let start = Instant::now();
            let serial = sim.run(router.as_mut(), &mut policies, &mut executors);
            let serial_wall_s = start.elapsed().as_secs_f64();

            let (sim, mut policies, mut executors) = build_cluster(spec);
            let sim = sim.with_config(ClusterConfig::default());
            let mut router = build_router();
            let start = Instant::now();
            let report = sim.run(router.as_mut(), &mut policies, &mut executors);
            let wall_s = start.elapsed().as_secs_f64();
            assert_eq!(
                serial,
                report,
                "clock-merge invariant: parallel != serial for {} under {}",
                spec.name,
                kind.name()
            );
            if spec.name == "grok_chat_tiered" {
                grok_time_s = Some(report.total_time_s);
            }

            let row = ClusterRow::of(spec, kind.name(), &report);
            let fleet_stages_per_s = row.stages as f64 / wall_s;
            let serial_fleet_stages_per_s = row.stages as f64 / serial_wall_s;
            let tbt_p99_ms = row.tbt_p99 * 1e3;
            rows.push(vec![
                row.cluster.clone(),
                row.router.clone(),
                row.replicas.to_string(),
                row.completed.to_string(),
                row.stages.to_string(),
                format!("{serial_wall_s:.3}"),
                format!("{wall_s:.3}"),
                format!("{fleet_stages_per_s:.0}"),
                format!("{:.0}", row.throughput),
                format!("{tbt_p99_ms:.2}"),
                if row.tiered {
                    format!("{:.3}", row.interactive_attainment)
                } else {
                    "-".into()
                },
                format!("{:.3}", row.kv_reuse_fraction),
                format!("{:.2}", row.load_imbalance),
                format!("{:.2}", row.replica_seconds),
                if spec.autoscale.is_some() {
                    format!("{}^{}v", row.scale_ups, row.scale_downs)
                } else {
                    "-".into()
                },
                if spec.disagg.is_some() {
                    report.disagg.handoffs.to_string()
                } else {
                    "-".into()
                },
            ]);
            let tiered_metrics = if row.tiered {
                format!(
                    "\"slo_attainment\": {:.4}, \"interactive_attainment\": {:.4}, \"goodput_tokens_per_s\": {:.1}, ",
                    row.attainment, row.interactive_attainment, row.goodput
                )
            } else {
                String::new()
            };
            let fault_metrics = if spec.faults.is_some() {
                format!(
                    "\"recovery_time_s\": {:.6}, \"fault_interactive_attainment\": {:.4}, \"requests_lost\": {}, \"retries_issued\": {}, \"kv_bytes_migrated\": {}, ",
                    row.recovery_time_s,
                    row.fault_attainment,
                    row.requests_lost,
                    row.retries_issued,
                    row.kv_bytes_migrated
                )
            } else {
                String::new()
            };
            let scaling_metrics = if spec.autoscale.is_some() {
                format!(
                    "\"scale_ups\": {}, \"scale_downs\": {}, \"scale_up_lag_s\": {:.6}, ",
                    row.scale_ups, row.scale_downs, row.scale_up_lag_s
                )
            } else {
                String::new()
            };
            let disagg_metrics = if fleet_ctx {
                let mut m = format!("\"t2ft_p50_ms\": {:.4}, ", report.t2ft().p50 * 1e3);
                if spec.disagg.is_some() {
                    m.push_str(&format!(
                        "\"handoffs\": {}, \"kv_bytes_shipped\": {}, \"reprefills\": {}, ",
                        report.disagg.handoffs,
                        report.disagg.kv_bytes_shipped,
                        report.disagg.reprefills
                    ));
                }
                m
            } else {
                String::new()
            };
            json_entries.push(format!(
                "    \"{}_{}\": {{\"fleet_stages_per_s\": {:.1}, \"wall_s\": {:.4}, \"serial_fleet_stages_per_s\": {:.1}, \"serial_wall_s\": {:.4}, \"threads\": {}, \"stages\": {}, \"completed\": {}, \"replicas\": {}, \"replica_seconds\": {:.4}, \"sim_tokens_per_sec\": {:.1}, \"tbt_p99_ms\": {:.4}, {}{}{}{}\"kv_reuse_fraction\": {:.4}, \"load_imbalance\": {:.4}, \"policy\": \"{}\", \"model\": \"{}\", \"batch\": {}}}",
                row.cluster,
                kind.name().replace('-', "_"),
                fleet_stages_per_s,
                wall_s,
                serial_fleet_stages_per_s,
                serial_wall_s,
                threads,
                row.stages,
                row.completed,
                row.replicas,
                row.replica_seconds,
                row.throughput,
                tbt_p99_ms,
                tiered_metrics,
                fault_metrics,
                scaling_metrics,
                disagg_metrics,
                row.kv_reuse_fraction,
                row.load_imbalance,
                spec.policy.name(),
                spec.model.name,
                spec.batch
            ));
        }
    }
    print_table(
        &format!(
            "Cluster suite (router x fleet; serial oracle vs parallel windows, {threads} threads)"
        ),
        &[
            "Cluster",
            "Router",
            "Repl",
            "Done",
            "Stages",
            "Serial s",
            "Par s",
            "fleet st/s",
            "sim tok/s",
            "TBT p99 ms",
            "Int. att.",
            "KV reuse",
            "Imbal",
            "Repl-s",
            "Scale",
            "Handoff",
        ],
        &rows,
    );

    // ---- snapshot round-trip artifact (Grok fleet, first router) ----
    let grok = suite
        .iter()
        .find(|s| s.name == "grok_chat_tiered")
        .expect("the suite ships the grok fleet");
    let (snapshot_json, taken_at_s) =
        snapshot_roundtrip(grok, grok_time_s.expect("the sweep ran the grok fleet"));
    let snap_path = "BENCH_cluster_snapshot.json";
    std::fs::write(snap_path, &snapshot_json)
        .unwrap_or_else(|e| panic!("writing {snap_path}: {e}"));
    println!(
        "\nsnapshot round-trip ok: paused grok_chat_tiered at {taken_at_s:.3}s, resumed \
         bit-identically ({} bytes -> {snap_path})",
        snapshot_json.len()
    );

    let json = format!(
        "{{\n  \"schema\": \"duplex-bench/cluster/v1\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"snapshot_roundtrip\": {{\"cluster\": \"grok_chat_tiered\", \"taken_at_s\": {:.6}, \"bytes\": {}, \"resumed_bit_identical\": true}},\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "paper" },
        threads,
        taken_at_s,
        snapshot_json.len(),
        json_entries.join(",\n")
    );
    let path = "BENCH_cluster.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
