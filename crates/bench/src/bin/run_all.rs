//! Run every figure/table harness in-process, in paper order
//! (EXPERIMENTS.md is generated from this output). Pass `--quick` for
//! the CI-sized sweep. Running in one process shares the calibrated
//! HBM bandwidth profile and skips a `cargo run` subprocess per figure.

fn main() {
    let scale = duplex_bench::scale_from_args();
    duplex_bench::reports::run_all(&scale);
}
