//! Run every figure/table harness in sequence (EXPERIMENTS.md is
//! generated from this output). Pass `--quick` for the CI-sized sweep.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let bins = [
        "table1_models",
        "area_table",
        "fig04_breakdown",
        "fig05_hetero",
        "fig08_edap",
        "fig11_throughput",
        "fig12_latency",
        "fig13_qps",
        "fig14_bankpim",
        "fig15_energy",
        "fig16_split",
    ];
    for bin in bins {
        let mut cmd = Command::new(&cargo);
        cmd.args(["run", "--release", "-q", "-p", "duplex-bench", "--bin", bin]);
        if quick {
            cmd.args(["--", "--quick"]);
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("running {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
