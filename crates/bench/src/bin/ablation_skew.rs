//! Ablation (Sec. VIII-B): how expert skew interacts with expert
//! co-processing. With hot and cold experts, splitting experts across
//! xPU and Logic-PIM pays off more than under ideal uniform routing.

use duplex::model::ModelConfig;
use duplex::sched::{Simulation, SimulationConfig, Workload};
use duplex::system::{SystemConfig, SystemExecutor};
use duplex_bench::{print_table, ratio, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let _ = scale;
    let model = ModelConfig::mixtral_8x7b();
    let mut rows = Vec::new();
    for skew in [0.0f64, 0.5, 1.0, 1.5, 2.0] {
        let mut tputs = Vec::new();
        for system in [SystemConfig::duplex(4, 1), SystemConfig::duplex_pe(4, 1)] {
            let mut ex = SystemExecutor::new(system, model.clone(), 7);
            ex.set_expert_skew(skew);
            let cfg = SimulationConfig {
                max_batch: 64,
                kv_capacity_bytes: ex.kv_capacity_bytes(),
                kv_bytes_per_token: model.kv_bytes_per_token(),
                ..Default::default()
            };
            let report =
                Simulation::closed_loop(cfg, Workload::gaussian(512, 128), 96).run(&mut ex);
            tputs.push(report.generation_throughput());
        }
        rows.push(vec![
            format!("{skew:.1}"),
            format!("{:.0}", tputs[0]),
            format!("{:.0}", tputs[1]),
            ratio(tputs[1] / tputs[0]),
        ]);
    }
    print_table(
        "Sec. VIII-B ablation: expert skew vs co-processing benefit (Mixtral, batch 64)",
        &["Zipf skew", "Duplex tok/s", "Duplex+PE tok/s", "PE gain"],
        &rows,
    );
}
