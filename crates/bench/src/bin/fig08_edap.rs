//! Fig. 8: normalized EDAP of Bank-PIM, BankGroup-PIM and Logic-PIM by
//! the Op/B of an FP16 GEMM with a 16384 x 4096 weight matrix.

use duplex::experiments::fig08_edap;
use duplex_bench::{print_table, ratio};

fn main() {
    let rows = fig08_edap();
    let mut table = Vec::new();
    for arch in ["Bank-PIM", "BankGroup-PIM", "Logic-PIM"] {
        let mut row = vec![arch.to_string()];
        for op_b in [1u64, 2, 4, 8, 16, 32] {
            let cell = rows
                .iter()
                .find(|r| r.arch == arch && r.op_b == op_b)
                .expect("cell exists");
            row.push(ratio(cell.normalized));
        }
        table.push(row);
    }
    print_table(
        "Fig. 8: normalized EDAP by GEMM Op/B (lower is better)",
        &["Arch", "1", "2", "4", "8", "16", "32"],
        &table,
    );
}
