//! Fig. 8: normalized EDAP of Bank-PIM, BankGroup-PIM and Logic-PIM by
//! the Op/B of an FP16 GEMM with a 16384 x 4096 weight matrix.

fn main() {
    let _ = duplex_bench::scale_from_args();
    duplex_bench::reports::fig08();
}
