//! End-to-end simulation throughput benchmark: how many simulated
//! continuous-batching stages per second does the whole stack sustain —
//! scheduler loop (lazy request generation, admission, retirement,
//! streaming metrics) plus incremental stage pricing — not just the
//! pricing kernel that `bench_stage_cost` isolates?
//!
//! Scenarios:
//!
//! * `closed_mixtral_b64` — Mixtral-8x7B on Duplex+PE+ET (4 devices),
//!   closed-loop Gaussian (1024, 1024), batch 64: the Fig. 11 shape;
//! * `closed_glam_b128` — GLaM on an 8-device node, batch 128: the
//!   MoE-heavy end of the sweep;
//! * `open_loop_1m` — a million Poisson-arrival requests at batch 256
//!   with per-stage records disabled: exercises O(batch) scheduler
//!   memory (quick mode runs 50k requests).
//!
//! Results print as a table and land in `BENCH_sim.json` next to
//! `BENCH_stage_cost.json` so CI tracks both the pricing kernel and
//! the full loop.

use std::time::Instant;

use duplex::model::ModelConfig;
use duplex::sched::{SimReport, Simulation, SimulationConfig, Workload};
use duplex::system::{SystemConfig, SystemExecutor};
use duplex_bench::print_table;

struct Scenario {
    name: &'static str,
    model: ModelConfig,
    system: SystemConfig,
    workload: Workload,
    max_batch: usize,
    requests: usize,
    qps: Option<f64>,
    record_stages: bool,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "closed_mixtral_b64",
            model: ModelConfig::mixtral_8x7b(),
            system: SystemConfig::duplex_pe_et(4, 1),
            workload: Workload::gaussian(1024, 1024),
            max_batch: 64,
            requests: if quick { 200 } else { 2000 },
            qps: None,
            record_stages: true,
        },
        Scenario {
            name: "closed_glam_b128",
            model: ModelConfig::glam(),
            system: SystemConfig::duplex_pe_et(8, 1),
            workload: Workload::gaussian(512, 512),
            max_batch: 128,
            requests: if quick { 400 } else { 4000 },
            qps: None,
            record_stages: true,
        },
        Scenario {
            name: "open_loop_1m",
            model: ModelConfig::mixtral_8x7b(),
            system: SystemConfig::duplex_pe_et(4, 1),
            workload: Workload::gaussian(128, 32),
            max_batch: 256,
            requests: if quick { 50_000 } else { 1_000_000 },
            // Saturating offered load: admission is batch-limited, so
            // the loop stays busy end to end.
            qps: Some(50_000.0),
            record_stages: false,
        },
    ]
}

fn run_scenario(s: &Scenario) -> (SimReport, f64) {
    let mut ex = SystemExecutor::new(s.system.clone(), s.model.clone(), 7);
    let cfg = SimulationConfig {
        max_batch: s.max_batch,
        kv_capacity_bytes: ex.kv_capacity_bytes(),
        kv_bytes_per_token: s.model.kv_bytes_per_token(),
        max_stages: usize::MAX,
        record_stages: s.record_stages,
    };
    let sim = match s.qps {
        Some(qps) => Simulation::poisson(cfg, s.workload.clone(), qps, s.requests),
        None => Simulation::closed_loop(cfg, s.workload.clone(), s.requests),
    };
    let start = Instant::now();
    let report = sim.run(&mut ex);
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let scale = duplex_bench::scale_from_args();
    let quick = scale == duplex::experiments::Scale::quick();

    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    for s in scenarios(quick) {
        let (report, wall_s) = run_scenario(&s);
        assert_eq!(
            report.completed.len(),
            s.requests,
            "{}: all requests complete",
            s.name
        );
        let stages = report.stage_stats.stages;
        let stages_per_sec = stages as f64 / wall_s;
        let tokens_per_sec = report.generated_tokens() as f64 / wall_s;
        rows.push(vec![
            s.name.to_string(),
            s.model.name.clone(),
            format!("{}", s.requests),
            format!("{stages}"),
            format!("{:.3}", wall_s),
            format!("{stages_per_sec:.0}"),
            format!("{tokens_per_sec:.0}"),
        ]);
        json_entries.push(format!(
            "    \"{}\": {{\"stages_per_sec\": {:.1}, \"sim_tokens_per_sec\": {:.1}, \"sim_fc_tokens_per_sec\": {:.1}, \"wall_s\": {:.4}, \"stages\": {}, \"requests\": {}, \"model\": \"{}\", \"system\": \"{}\", \"batch\": {}}}",
            s.name,
            stages_per_sec,
            tokens_per_sec,
            report.fc_tokens() as f64 / wall_s,
            wall_s,
            stages,
            s.requests,
            s.model.name,
            s.system.name,
            s.max_batch
        ));
    }
    print_table(
        "End-to-end simulation throughput (scheduler + incremental pricing)",
        &[
            "Scenario",
            "Model",
            "Requests",
            "Stages",
            "Wall s",
            "stages/s",
            "sim tokens/s",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"schema\": \"duplex-bench/sim/v1\",\n  \"mode\": \"{}\",\n  \"scenarios\": {{\n{}\n  }}\n}}\n",
        if quick { "quick" } else { "paper" },
        json_entries.join(",\n")
    );
    let path = "BENCH_sim.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}
