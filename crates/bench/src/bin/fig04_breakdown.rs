//! Fig. 4(a): execution-time breakdown of Mixtral and GLaM stages on
//! the GPU system; Fig. 4(b) (`--roofline`): Op/B vs achieved TFLOPS.

use duplex::experiments::{fig04_breakdown, fig04_roofline};
use duplex_bench::{ms, print_table, ratio, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let rows: Vec<Vec<String>> = fig04_breakdown(&scale)
        .into_iter()
        .map(|r| {
            vec![
                r.model,
                r.batch.to_string(),
                r.lout.to_string(),
                if r.mixed { "mixed" } else { "decode-only" }.into(),
                ratio(r.fractions[0]),
                ratio(r.fractions[1]),
                ratio(r.fractions[2]),
                ratio(r.fractions[3]),
                ratio(r.fractions[4]),
                ms(r.seconds),
            ]
        })
        .collect();
    print_table(
        "Fig. 4(a): GPU-system time breakdown (fractions)",
        &["Model", "Batch", "Lout", "Stage", "FC", "Attn(P)", "Attn(D)", "MoE", "Comm", "ms"],
        &rows,
    );

    if std::env::args().any(|a| a == "--roofline") || true {
        let rows: Vec<Vec<String>> = fig04_roofline(&scale)
            .into_iter()
            .map(|r| {
                vec![
                    r.model,
                    r.batch.to_string(),
                    r.op.into(),
                    format!("{:.1}", r.op_b),
                    format!("{:.1}", r.tflops),
                ]
            })
            .collect();
        print_table(
            "Fig. 4(b): roofline coordinates on the GPU system (decoding-only)",
            &["Model", "Batch", "Op", "Op/B", "TFLOP/s"],
            &rows,
        );
    }
}
