//! Fig. 4(a): execution-time breakdown of Mixtral and GLaM stages on
//! the GPU system; Fig. 4(b): Op/B vs achieved TFLOPS.

fn main() {
    duplex_bench::reports::fig04(&duplex_bench::scale_from_args());
}
