//! Fig. 12: TBT / T2FT / E2E latency of GLaM (batch 64) across systems,
//! normalized to the GPU system.

fn main() {
    duplex_bench::reports::fig12(&duplex_bench::scale_from_args());
}
