//! Fig. 12: TBT / T2FT / E2E latency of GLaM (batch 64) across systems,
//! normalized to the GPU system.

use duplex::experiments::fig12_latency;
use duplex_bench::{ms, print_table, scale_from_args};

fn main() {
    let rows = fig12_latency(&scale_from_args());
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                format!("({}, {})", r.lin, r.lout),
                r.system,
                ms(r.tbt[0]),
                ms(r.tbt[1]),
                ms(r.tbt[2]),
                ms(r.t2ft_p50),
                format!("{:.3}", r.e2e_p50),
            ]
        })
        .collect();
    print_table(
        "Fig. 12: GLaM latency, batch 64 (TBT/T2FT in ms, E2E in s)",
        &["(Lin, Lout)", "System", "TBT p50", "TBT p90", "TBT p99", "T2FT p50", "E2E p50 (s)"],
        &table,
    );
}
