//! Fig. 13: Mixtral latency vs offered Poisson load (QPS), (Lin, Lout)
//! = (4096, 512), max batch 128.

use duplex::experiments::fig13_qps;
use duplex_bench::{ms, print_table, scale_from_args};

fn main() {
    let rows = fig13_qps(&scale_from_args());
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.qps),
                r.system,
                ms(r.tbt[0]),
                ms(r.tbt[1]),
                ms(r.tbt[2]),
                format!("{:.3}", r.t2ft_p50),
                format!("{:.3}", r.e2e_p50),
            ]
        })
        .collect();
    print_table(
        "Fig. 13: latency vs QPS, Mixtral (4096, 512), max batch 128",
        &["QPS", "System", "TBT p50", "TBT p90", "TBT p99", "T2FT p50 (s)", "E2E p50 (s)"],
        &table,
    );
}
