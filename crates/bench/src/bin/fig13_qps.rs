//! Fig. 13: Mixtral latency vs offered Poisson load (QPS), (Lin, Lout)
//! = (4096, 512), max batch 128.

fn main() {
    duplex_bench::reports::fig13(&duplex_bench::scale_from_args());
}
