//! Table I: model configurations used for evaluation.

fn main() {
    let _ = duplex_bench::scale_from_args();
    duplex_bench::reports::table1_models();
}
