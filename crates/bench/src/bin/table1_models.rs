//! Table I: model configurations used for evaluation.

use duplex::experiments::table1;
use duplex_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                format!("{:.0}B", r.params_b),
                r.layers.to_string(),
                r.hidden.to_string(),
                r.intermediate.to_string(),
                r.heads.to_string(),
                if r.deg_grp == 1 { "1 (MHA)".into() } else { format!("{} (GQA)", r.deg_grp) },
                if r.n_experts == 0 { "-".into() } else { r.n_experts.to_string() },
                if r.top_k == 0 { "-".into() } else { r.top_k.to_string() },
                format!("{} KiB", r.kv_bytes_per_token >> 10),
            ]
        })
        .collect();
    print_table(
        "Table I: model configurations",
        &["Model", "Param", "#layer", "Hidden", "Interm.", "#head", "deg_grp", "Nex", "top-k", "KV/token"],
        &rows,
    );
}
