//! The figure/table report printers. Each function regenerates one
//! paper artifact and prints it; the thin `--bin` wrappers and the
//! in-process `run_all` driver both call these, so a full report run is
//! one process with one warm bandwidth-profile calibration instead of
//! one `cargo run` subprocess per figure.

use duplex::compute::AreaModel;
use duplex::experiments::{self, Scale};

use crate::{mj, ms, print_table, ratio};

/// Table I: model configurations.
pub fn table1_models() {
    let rows: Vec<Vec<String>> = experiments::table1()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                format!("{:.0}B", r.params_b),
                r.layers.to_string(),
                r.hidden.to_string(),
                r.intermediate.to_string(),
                r.heads.to_string(),
                if r.deg_grp == 1 {
                    "1 (MHA)".into()
                } else {
                    format!("{} (GQA)", r.deg_grp)
                },
                if r.n_experts == 0 {
                    "-".into()
                } else {
                    r.n_experts.to_string()
                },
                if r.top_k == 0 {
                    "-".into()
                } else {
                    r.top_k.to_string()
                },
                format!("{} KiB", r.kv_bytes_per_token >> 10),
            ]
        })
        .collect();
    print_table(
        "Table I: model configurations",
        &[
            "Model", "Param", "#layer", "Hidden", "Interm.", "#head", "deg_grp", "Nex", "top-k",
            "KV/token",
        ],
        &rows,
    );
}

/// Sec. VII-E: area overhead of the Logic-PIM stack components.
pub fn area_table() {
    let a = AreaModel::micro24();
    let rows = vec![
        vec![
            "32 GEMM modules (512 MACs + 8 KB buffer each)".to_string(),
            format!("{:.2}", a.logic_pim_gemm_mm2),
        ],
        vec![
            "2 x 1 MB input/temporal buffers".to_string(),
            format!("{:.2}", a.logic_pim_buffers_mm2),
        ],
        vec![
            "Softmax unit (cmp tree, exp, dividers, 128 KB)".to_string(),
            format!("{:.2}", a.logic_pim_softmax_mm2),
        ],
        vec![
            "Added TSVs (4x per channel, 22 um pitch)".to_string(),
            format!("{:.2}", a.logic_pim_tsv_mm2),
        ],
        vec![
            "Total per Logic-PIM stack".to_string(),
            format!("{:.2}", a.logic_pim_total_mm2()),
        ],
        vec![
            "Fraction of 121 mm^2 HBM3 logic die".to_string(),
            format!("{:.2}%", 100.0 * a.logic_pim_overhead_fraction()),
        ],
    ];
    print_table(
        "Sec. VII-E: Logic-PIM area overhead (mm^2)",
        &["Component", "Area"],
        &rows,
    );
}

/// Fig. 4: stage time breakdown and roofline coordinates.
pub fn fig04(scale: &Scale) {
    let rows: Vec<Vec<String>> = experiments::fig04_breakdown(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.model,
                r.batch.to_string(),
                r.lout.to_string(),
                if r.mixed { "mixed" } else { "decode-only" }.into(),
                ratio(r.fractions[0]),
                ratio(r.fractions[1]),
                ratio(r.fractions[2]),
                ratio(r.fractions[3]),
                ratio(r.fractions[4]),
                ms(r.seconds),
            ]
        })
        .collect();
    print_table(
        "Fig. 4(a): GPU-system time breakdown (fractions)",
        &[
            "Model", "Batch", "Lout", "Stage", "FC", "Attn(P)", "Attn(D)", "MoE", "Comm", "ms",
        ],
        &rows,
    );

    let rows: Vec<Vec<String>> = experiments::fig04_roofline(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.model,
                r.batch.to_string(),
                r.op.into(),
                format!("{:.1}", r.op_b),
                format!("{:.1}", r.tflops),
            ]
        })
        .collect();
    print_table(
        "Fig. 4(b): roofline coordinates on the GPU system (decoding-only)",
        &["Model", "Batch", "Op", "Op/B", "TFLOP/s"],
        &rows,
    );
}

/// Fig. 5: stage ratio, hetero latency and hetero throughput.
pub fn fig05(scale: &Scale) {
    let rows: Vec<Vec<String>> = experiments::fig05_stage_ratio(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                r.lin.to_string(),
                r.lout.to_string(),
                ratio(r.decode_only_fraction),
                ratio(1.0 - r.decode_only_fraction),
            ]
        })
        .collect();
    print_table(
        "Fig. 5(a): stage-type ratio, Mixtral on GPU",
        &["Batch", "Lin", "Lout", "Decode-only", "Mixed"],
        &rows,
    );

    let lat = experiments::fig05_hetero_latency(scale);
    let mut rows = Vec::new();
    for pair in lat.chunks(2) {
        let (gpu, het) = (&pair[0], &pair[1]);
        rows.push(vec![
            gpu.lin.to_string(),
            gpu.lout.to_string(),
            ratio(het.tbt[0] / gpu.tbt[0]),
            ratio(het.tbt[1] / gpu.tbt[1]),
            ratio(het.tbt[2] / gpu.tbt[2]),
            ratio(het.t2ft_p50 / gpu.t2ft_p50),
            ratio(het.e2e_p50 / gpu.e2e_p50),
        ]);
    }
    print_table(
        "Fig. 5(b): hetero latency normalized to 4-GPU (Mixtral, batch 32)",
        &[
            "Lin", "Lout", "TBT p50", "TBT p90", "TBT p99", "T2FT p50", "E2E p50",
        ],
        &rows,
    );

    let rows: Vec<Vec<String>> = experiments::fig05_hetero_throughput(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.lin.to_string(),
                r.lout.to_string(),
                ratio(r.normalized),
                ratio(r.normalized_no_capacity),
                format!("{:.0}", r.hetero_mean_batch),
            ]
        })
        .collect();
    print_table(
        "Fig. 5(c): hetero throughput normalized to GPU (Mixtral, batch 128)",
        &[
            "Lin",
            "Lout",
            "Throughput",
            "No-capacity-limit",
            "Hetero batch",
        ],
        &rows,
    );
}

/// Fig. 8: normalized EDAP of the PIM options by GEMM Op/B.
pub fn fig08() {
    let rows = experiments::fig08_edap();
    let mut table = Vec::new();
    for arch in ["Bank-PIM", "BankGroup-PIM", "Logic-PIM"] {
        let mut row = vec![arch.to_string()];
        for op_b in [1u64, 2, 4, 8, 16, 32] {
            let cell = rows
                .iter()
                .find(|r| r.arch == arch && r.op_b == op_b)
                .expect("cell exists");
            row.push(ratio(cell.normalized));
        }
        table.push(row);
    }
    print_table(
        "Fig. 8: normalized EDAP by GEMM Op/B (lower is better)",
        &["Arch", "1", "2", "4", "8", "16", "32"],
        &table,
    );
}

fn print_throughput(title: &str, rows: Vec<experiments::ThroughputRow>) {
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.model,
                r.batch.to_string(),
                format!("({}, {})", r.lin, r.lout),
                r.system,
                format!("{:.0}", r.tokens_per_s),
                ratio(r.normalized),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "Model",
            "Batch",
            "(Lin, Lout)",
            "System",
            "tokens/s",
            "Normalized",
        ],
        &table,
    );
}

/// Fig. 11: normalized throughput across systems and MoE models.
pub fn fig11(scale: &Scale) {
    print_throughput(
        "Fig. 11: throughput normalized to the GPU system",
        experiments::fig11_throughput(scale),
    );
}

/// Fig. 12: GLaM latency across systems.
pub fn fig12(scale: &Scale) {
    let table: Vec<Vec<String>> = experiments::fig12_latency(scale)
        .into_iter()
        .map(|r| {
            vec![
                format!("({}, {})", r.lin, r.lout),
                r.system,
                ms(r.tbt[0]),
                ms(r.tbt[1]),
                ms(r.tbt[2]),
                ms(r.t2ft_p50),
                format!("{:.3}", r.e2e_p50),
            ]
        })
        .collect();
    print_table(
        "Fig. 12: GLaM latency, batch 64 (TBT/T2FT in ms, E2E in s)",
        &[
            "(Lin, Lout)",
            "System",
            "TBT p50",
            "TBT p90",
            "TBT p99",
            "T2FT p50",
            "E2E p50 (s)",
        ],
        &table,
    );
}

/// Fig. 13: Mixtral latency vs offered Poisson load.
pub fn fig13(scale: &Scale) {
    let table: Vec<Vec<String>> = experiments::fig13_qps(scale)
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.qps),
                r.system,
                ms(r.tbt[0]),
                ms(r.tbt[1]),
                ms(r.tbt[2]),
                format!("{:.3}", r.t2ft_p50),
                format!("{:.3}", r.e2e_p50),
            ]
        })
        .collect();
    print_table(
        "Fig. 13: latency vs QPS, Mixtral (4096, 512), max batch 128",
        &[
            "QPS",
            "System",
            "TBT p50",
            "TBT p90",
            "TBT p99",
            "T2FT p50 (s)",
            "E2E p50 (s)",
        ],
        &table,
    );
}

/// Fig. 14: GPU vs Bank-PIM vs Duplex across model classes.
pub fn fig14(scale: &Scale) {
    print_throughput(
        "Fig. 14: throughput normalized to GPU (MoE/GQA/MHA model classes)",
        experiments::fig14_bankpim(scale),
    );
}

/// Fig. 15: per-token energy breakdown of GPU vs Duplex.
pub fn fig15(scale: &Scale) {
    let rows = experiments::fig15_energy(scale);
    // Normalize each (model, batch, lengths) pair to its GPU total.
    let mut table = Vec::new();
    for pair in rows.chunks(2) {
        let (gpu, dup) = (&pair[0], &pair[1]);
        for r in [gpu, dup] {
            table.push(vec![
                r.model.clone(),
                r.batch.to_string(),
                format!("({}, {})", r.lin, r.lout),
                r.system.clone(),
                mj(r.buckets_j[0]),
                mj(r.buckets_j[1]),
                mj(r.buckets_j[2]),
                mj(r.buckets_j[3]),
                mj(r.buckets_j[4]),
                mj(r.buckets_j[5]),
                ratio(r.total_j / gpu.total_j),
            ]);
        }
    }
    print_table(
        "Fig. 15: energy per generated token (mJ; last column normalized to GPU)",
        &[
            "Model",
            "Batch",
            "(Lin, Lout)",
            "System",
            "FC-D",
            "FC-C",
            "Att-D",
            "Att-C",
            "MoE-D",
            "MoE-C",
            "Norm",
        ],
        &table,
    );
}

/// Fig. 16: Duplex vs Duplex-Split disaggregation.
pub fn fig16(scale: &Scale) {
    let rows = experiments::fig16_split(scale);
    let mut table = Vec::new();
    for pair in rows.chunks(2) {
        let (dup, split) = (&pair[0], &pair[1]);
        for r in [dup, split] {
            table.push(vec![
                format!("({}, {})", r.lin, r.lout),
                r.system.clone(),
                ms(r.tbt[0]),
                ms(r.tbt[1]),
                ms(r.tbt[2]),
                format!("{:.3}", r.t2ft_p50),
                format!("{:.3}", r.e2e_p50),
                ratio(r.throughput / dup.throughput),
            ]);
        }
    }
    print_table(
        "Fig. 16: Duplex vs Duplex-Split (TBT ms, T2FT/E2E s, throughput normalized)",
        &[
            "(Lin, Lout)",
            "System",
            "TBT p50",
            "TBT p90",
            "TBT p99",
            "T2FT p50",
            "E2E p50",
            "Tput",
        ],
        &table,
    );
}

/// The scenario-suite sweep: every scenario under every policy, with
/// SLO attainment, goodput and prefix-reuse rates (beyond the paper;
/// see `duplex::experiments::scenarios`).
pub fn scenarios(scale: &Scale) {
    let table: Vec<Vec<String>> = experiments::scenarios(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.scenario,
                r.policy,
                r.completed.to_string(),
                format!("{:.0}", r.throughput),
                if r.tiered {
                    format!("{:.3}", r.attainment)
                } else {
                    "-".into()
                },
                if r.tiered {
                    format!("{:.0}", r.goodput)
                } else {
                    "-".into()
                },
                ms(r.tbt_p99),
                ms(r.t2ft_p50),
                ratio(r.kv_reuse_fraction),
            ]
        })
        .collect();
    print_table(
        "Scenario suite: Mixtral on Duplex+PE+ET, batch 64 (TBT/T2FT in ms)",
        &[
            "Scenario", "Policy", "Done", "tokens/s", "SLO att.", "Goodput", "TBT p99", "T2FT p50",
            "KV reuse",
        ],
        &table,
    );
}

/// The cluster sweep: every suite fleet under every shipped router,
/// with fleet throughput, SLO attainment, KV reuse and load balance
/// (beyond the paper; see `duplex::experiments::clusters`).
pub fn clusters(scale: &Scale) {
    let table: Vec<Vec<String>> = experiments::clusters(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.cluster,
                r.router,
                r.replicas.to_string(),
                r.completed.to_string(),
                format!("{:.0}", r.throughput),
                if r.tiered {
                    format!("{:.3}", r.attainment)
                } else {
                    "-".into()
                },
                if r.tiered {
                    format!("{:.3}", r.interactive_attainment)
                } else {
                    "-".into()
                },
                ms(r.tbt_p99),
                ratio(r.kv_reuse_fraction),
                ratio(r.load_imbalance),
            ]
        })
        .collect();
    print_table(
        "Cluster serving: multi-replica fleets by router (TBT in ms)",
        &[
            "Cluster",
            "Router",
            "Repl",
            "Done",
            "tokens/s",
            "SLO att.",
            "Int. att.",
            "TBT p99",
            "KV reuse",
            "Imbalance",
        ],
        &table,
    );
}

/// Every figure and table, in paper order, in this process, plus the
/// scenario and cluster suites.
pub fn run_all(scale: &Scale) {
    table1_models();
    area_table();
    fig04(scale);
    fig05(scale);
    fig08();
    fig11(scale);
    fig12(scale);
    fig13(scale);
    fig14(scale);
    fig15(scale);
    fig16(scale);
    scenarios(scale);
    clusters(scale);
}
