//! Experiment harness for the Duplex paper: table formatting and scale
//! selection shared by the per-figure binaries.
//!
//! Every binary accepts `--quick` to run the shrunk CI-sized sweep
//! (sequence lengths divided by 8); the default is the paper-sized
//! sweep. Run them all with `cargo run --release -p duplex-bench --bin
//! run_all`.

use duplex::experiments::Scale;

/// Parse `--quick` / `--paper` from the command line.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", cell, width = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Milliseconds with three decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// A dimensionless ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Joules as millijoules.
pub fn mj(joules: f64) -> String {
    format!("{:.2}", joules * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.001234), "1.234");
        assert_eq!(ratio(2.345), "2.35");
        assert_eq!(mj(0.01), "10.00");
    }
}
