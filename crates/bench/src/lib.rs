//! Experiment harness for the Duplex paper: table formatting, scale
//! selection and the figure-report printers shared by the per-figure
//! binaries and the in-process `run_all` driver.
//!
//! Every binary accepts `--quick` (the shrunk CI-sized sweep, sequence
//! lengths divided by 8) or `--paper` (the default full-sized sweep);
//! anything else is rejected with a usage message. Run every figure
//! with `cargo run --release -p duplex-bench --bin run_all`.

use duplex::experiments::Scale;

pub mod regression;
pub mod reports;

/// Parse the common scale flags from an argument list: `--quick` for
/// the CI-sized sweep, `--paper` (default) for the full sweep. Unknown
/// flags are an error so typos cannot silently run a paper-sized sweep.
pub fn parse_scale<I>(args: I) -> Result<Scale, String>
where
    I: IntoIterator<Item = String>,
{
    let mut scale = Scale::paper();
    for arg in args {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--paper" => scale = Scale::paper(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(scale)
}

/// Parse `--quick` / `--paper` from the process command line; prints a
/// usage message and exits with status 2 on any unknown flag.
pub fn scale_from_args() -> Scale {
    match parse_scale(std::env::args().skip(1)) {
        Ok(scale) => scale,
        Err(e) => {
            let bin = std::env::args()
                .next()
                .unwrap_or_else(|| "duplex-bench".into());
            eprintln!("error: {e}");
            eprintln!("usage: {bin} [--quick | --paper]");
            eprintln!("  --quick  CI-sized sweep (sequence lengths / 8)");
            eprintln!("  --paper  full paper-sized sweep (default)");
            std::process::exit(2);
        }
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>width$}  ",
                cell,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Milliseconds with three decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// A dimensionless ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Joules as millijoules.
pub fn mj(joules: f64) -> String {
    format!("{:.2}", joules * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.001234), "1.234");
        assert_eq!(ratio(2.345), "2.35");
        assert_eq!(mj(0.01), "10.00");
    }

    #[test]
    fn parse_scale_accepts_both_flags_and_defaults_to_paper() {
        assert_eq!(parse_scale(Vec::<String>::new()).unwrap(), Scale::paper());
        assert_eq!(parse_scale(vec!["--quick".into()]).unwrap(), Scale::quick());
        assert_eq!(parse_scale(vec!["--paper".into()]).unwrap(), Scale::paper());
        // Last flag wins.
        assert_eq!(
            parse_scale(vec!["--quick".into(), "--paper".into()]).unwrap(),
            Scale::paper()
        );
    }

    #[test]
    fn parse_scale_rejects_unknown_flags() {
        let err = parse_scale(vec!["--fast".into()]).unwrap_err();
        assert!(err.contains("--fast"), "{err}");
        assert!(parse_scale(vec!["extra".into()]).is_err());
    }
}
