//! The CI benchmark-regression gate: compares the metrics of freshly
//! produced `BENCH_*.json` reports against committed baselines and
//! fails on a regression beyond the threshold.
//!
//! Baselines live in `ci/bench_baseline.json` as
//! `{"<file-stem>": {"<entry>": {"stages_per_sec": <f64>}}}` — the
//! same entry names the bench binaries emit. Only metrics present in
//! the baseline are gated, so adding a bench entry never breaks CI
//! until a baseline is recorded for it.
//!
//! The gate is **direction-aware**: throughput-like metrics regress by
//! *dropping* below baseline, latency-like metrics (TBT/T2FT tails,
//! identified by name — see [`lower_is_better`]) regress by *rising*
//! above it. Latency metrics are simulated time, so they are
//! seed-deterministic and machine-independent; throughput metrics are
//! wall clock, so their threshold is generous (30% by default, shared
//! CI runners are noisy) and catches order-of-magnitude fast-path
//! regressions, not single-digit drift.

use duplex::sched::json::{parse, JsonValue};

/// Default allowed fractional drift before the gate fails.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Whether a metric regresses by rising (latencies and durations)
/// rather than by falling (throughput). Keyed on the metric name the
/// bench binaries emit: TBT / T2FT percentiles, anything per-tier
/// built on them, raw wall-clock durations (`wall_s`), the
/// failure-drill time-to-recover (`recovery_time_s`), the autoscale
/// drill's replica-seconds bill (`replica_seconds`) and its worst
/// provisioning lag (`scale_up_lag_s`), and the preemption drill's
/// paused-time bill (`paused_time_s` — time victims spend parked is
/// deferred service). Attainment metrics — including
/// `fault_interactive_attainment` and `tier_interactive_attainment` —
/// keep the default higher-is-better direction.
pub fn lower_is_better(metric: &str) -> bool {
    metric.starts_with("tbt_")
        || metric.starts_with("t2ft_")
        || metric.contains("_tbt_p")
        || metric.ends_with("wall_s")
        || metric.ends_with("recovery_time_s")
        || metric.ends_with("replica_seconds")
        || metric.ends_with("scale_up_lag_s")
        || metric.ends_with("paused_time_s")
}

/// One gated metric's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// `<report>/<entry>/<metric>`.
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Latency-like metric: regression means rising above baseline.
    pub lower_is_better: bool,
}

impl Comparison {
    /// current / baseline (0 when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        self.current / self.baseline
    }

    /// Whether this metric regressed beyond `threshold`: a fractional
    /// drop for throughput metrics (0.30 fails below 70% of baseline),
    /// a fractional rise for latency metrics (0.30 fails above 130%).
    pub fn regressed(&self, threshold: f64) -> bool {
        if self.lower_is_better {
            self.ratio() > 1.0 + threshold
        } else {
            self.ratio() < 1.0 - threshold
        }
    }
}

/// Compare one report document against its baseline section: for every
/// `(entry, metric)` leaf in the baseline, look up the same path under
/// the report's `classes`/`scenarios` map and pair the values.
///
/// # Errors
///
/// Returns a message when a baselined entry or metric is missing from
/// the report — a silently dropped benchmark must fail the gate too.
pub fn compare_report(
    report_name: &str,
    baseline: &JsonValue,
    report: &JsonValue,
) -> Result<Vec<Comparison>, String> {
    let entries = report
        .get("classes")
        .or_else(|| report.get("scenarios"))
        .ok_or_else(|| format!("{report_name}: no `classes`/`scenarios` section"))?;
    let base_entries = baseline
        .as_object()
        .ok_or_else(|| format!("{report_name}: baseline section is not an object"))?;
    let mut comparisons = Vec::new();
    for (entry_name, base_metrics) in base_entries {
        let current_entry = entries
            .get(entry_name)
            .ok_or_else(|| format!("{report_name}: entry `{entry_name}` missing from report"))?;
        let metrics = base_metrics
            .as_object()
            .ok_or_else(|| format!("{report_name}/{entry_name}: baseline must be an object"))?;
        for (metric, base_value) in metrics {
            let baseline_value = base_value
                .as_f64()
                .ok_or_else(|| format!("{report_name}/{entry_name}/{metric}: non-numeric"))?;
            let current = current_entry
                .get(metric)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| {
                    format!("{report_name}/{entry_name}: metric `{metric}` missing from report")
                })?;
            comparisons.push(Comparison {
                key: format!("{report_name}/{entry_name}/{metric}"),
                baseline: baseline_value,
                current,
                lower_is_better: lower_is_better(metric),
            });
        }
    }
    Ok(comparisons)
}

/// Gate a set of `(report name, report text)` pairs against a baseline
/// document. Returns all comparisons; the caller renders them and
/// checks [`Comparison::regressed`].
///
/// # Errors
///
/// Propagates JSON and missing-entry errors as messages.
pub fn gate_reports(
    baseline_text: &str,
    reports: &[(&str, String)],
) -> Result<Vec<Comparison>, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let mut all = Vec::new();
    for (name, text) in reports {
        let Some(section) = baseline.get(name) else {
            continue; // no baseline recorded for this report yet
        };
        let report = parse(text).map_err(|e| format!("{name}: {e}"))?;
        all.extend(compare_report(name, section, &report)?);
    }
    Ok(all)
}

/// One `(key, direction)` pair a self-test fixture declares must trip.
#[derive(Debug, Clone, PartialEq)]
pub struct MustTrip {
    /// `<report>/<entry>/<metric>` — the [`Comparison::key`] format.
    pub key: String,
    /// `true` when the fixture declares the metric gates as
    /// lower-is-better (the table's `min` direction).
    pub lower_is_better: bool,
}

/// The result of a gate self-test: the rendered table plus one message
/// per declaration the gate failed to honor (empty = the gate proved
/// every declared trip).
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTestOutcome {
    /// The rendered comparison table (same format as a normal gate).
    pub table: String,
    /// Human-readable misses; the self-test passes iff this is empty.
    pub failures: Vec<String>,
}

/// Parse the `_self_test.must_trip` declarations out of a fixture
/// baseline document.
///
/// # Errors
///
/// Returns a message when the list is absent, empty, or malformed —
/// a fixture that declares nothing proves nothing.
pub fn must_trip_declarations(baseline: &JsonValue) -> Result<Vec<MustTrip>, String> {
    let list = baseline
        .get("_self_test")
        .and_then(|s| s.get("must_trip"))
        .and_then(JsonValue::as_array)
        .ok_or("self-test fixture has no `_self_test.must_trip` array")?;
    let mut wanted = Vec::new();
    for decl in list {
        let key = decl
            .get("key")
            .and_then(JsonValue::as_str)
            .ok_or("must_trip declaration without a string `key`")?;
        let direction = decl
            .get("direction")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{key}: must_trip declaration without a string `direction`"))?;
        let lower_is_better = match direction {
            "min" => true,
            "max" => false,
            other => {
                return Err(format!(
                    "{key}: direction must be `min` or `max`, got `{other}`"
                ))
            }
        };
        wanted.push(MustTrip {
            key: key.to_string(),
            lower_is_better,
        });
    }
    if wanted.is_empty() {
        return Err("self-test fixture declares an empty `must_trip` list".into());
    }
    Ok(wanted)
}

/// The gate's self-test: gate `reports` against a fixture baseline of
/// deliberately impossible values and verify that every `(metric,
/// direction)` pair the fixture's `_self_test.must_trip` list declares
/// actually (a) was gated, (b) gates in the declared direction, and
/// (c) tripped. The fixture file itself is the single source of truth
/// for what must trip — CI runs this instead of grepping the table.
///
/// # Errors
///
/// Propagates fixture/report parse errors and malformed declarations.
pub fn run_self_test(
    baseline_text: &str,
    reports: &[(&str, String)],
    threshold: f64,
) -> Result<SelfTestOutcome, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("fixture: {e}"))?;
    let wanted = must_trip_declarations(&baseline)?;
    let comparisons = gate_reports(baseline_text, reports)?;
    let (table, _) = render_gate(&comparisons, threshold);
    let mut failures = Vec::new();
    for MustTrip {
        key,
        lower_is_better,
    } in &wanted
    {
        match comparisons.iter().find(|c| &c.key == key) {
            None => failures.push(format!(
                "{key}: never gated — entry or metric missing from the fixture or the reports"
            )),
            Some(c) if c.lower_is_better != *lower_is_better => failures.push(format!(
                "{key}: gates as `{}` but the fixture declares `{}`",
                if c.lower_is_better { "min" } else { "max" },
                if *lower_is_better { "min" } else { "max" },
            )),
            Some(c) if !c.regressed(threshold) => failures.push(format!(
                "{key}: did not trip (baseline {}, current {}, ratio {:.3})",
                c.baseline,
                c.current,
                c.ratio()
            )),
            Some(_) => {}
        }
    }
    Ok(SelfTestOutcome { table, failures })
}

/// Metrics `write_baseline` records, with how each baseline value is
/// derived from the measured one. Wall-clock throughputs get a
/// generous floor (shared CI runners are noisy), wall-clock durations
/// a generous hang-detector ceiling; simulated-time metrics are
/// seed-deterministic and recorded exactly.
const BASELINE_METRICS: &[(&str, BaselineRule)] = &[
    ("stages_per_sec", BaselineRule::ThroughputFloor),
    ("fleet_stages_per_s", BaselineRule::ThroughputFloor),
    ("wall_s", BaselineRule::WallCeiling),
    ("tbt_p99_ms", BaselineRule::Exact),
    ("t2ft_p50_ms", BaselineRule::Exact),
    ("tier_interactive_tbt_p99_ms", BaselineRule::Exact),
    ("tier_interactive_attainment", BaselineRule::Exact),
    ("slo_attainment", BaselineRule::Exact),
    ("interactive_attainment", BaselineRule::Exact),
    ("paused_time_s", BaselineRule::Exact),
    ("kv_reuse_fraction", BaselineRule::Exact),
    ("recovery_time_s", BaselineRule::Exact),
    ("fault_interactive_attainment", BaselineRule::Exact),
    ("replica_seconds", BaselineRule::Exact),
    ("scale_up_lag_s", BaselineRule::Exact),
];

/// How one recorded metric's baseline derives from its measured value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BaselineRule {
    /// Machine-dependent throughput: floor at 45% of measured, so the
    /// 30% gate threshold trips on order-of-magnitude regressions, not
    /// runner noise.
    ThroughputFloor,
    /// Machine-dependent duration: ceiling at 50x measured (never
    /// under half a second) — a hang detector, not a noise bound.
    WallCeiling,
    /// Simulated time or a deterministic fraction: record exactly.
    Exact,
}

impl BaselineRule {
    fn apply(self, measured: f64) -> f64 {
        match self {
            Self::ThroughputFloor => 0.45 * measured,
            Self::WallCeiling => (50.0 * measured).max(0.5),
            Self::Exact => measured,
        }
    }
}

/// Regenerate the committed baseline document from freshly produced
/// `(report name, report text)` pairs: every entry of every report
/// contributes the known baseline metrics, headroomed per rule.
/// Zero-valued measurements are skipped — [`Comparison::ratio`] treats
/// a zero baseline as ungateable, so recording one would add a metric
/// the gate can never trip on. Output is deterministic (report order,
/// then entry order, then metric-table order) so regenerated baselines
/// diff cleanly.
///
/// # Errors
///
/// Returns a message when a report does not parse or lacks its
/// `classes`/`scenarios` section.
pub fn write_baseline(reports: &[(&str, String)]) -> Result<String, String> {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"_comment\": \"Committed quick-mode baselines for the CI benchmark-regression \
         gate (check_bench). Regenerate with `check_bench --write-baseline` after running \
         the --quick benches: wall-clock throughputs (stages_per_sec, fleet_stages_per_s) \
         are floored at 45% of measured so the 30% gate trips on order-of-magnitude \
         fast-path regressions rather than shared-runner noise; wall_s ceilings sit at \
         50x measured (>= 0.5s) as hang detectors; simulated-time and deterministic \
         metrics (tbt percentiles, attainments, kv_reuse_fraction, recovery_time_s, \
         replica_seconds, scale_up_lag_s, paused_time_s) are recorded exactly. Directions \
         come from regression::lower_is_better.\",\n",
    );
    let mut sections = Vec::new();
    for (name, text) in reports {
        let report = parse(text).map_err(|e| format!("{name}: {e}"))?;
        let entries = report
            .get("classes")
            .or_else(|| report.get("scenarios"))
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("{name}: no `classes`/`scenarios` object"))?;
        let mut lines = Vec::new();
        for (entry_name, metrics) in entries {
            let mut recorded = Vec::new();
            for (metric, rule) in BASELINE_METRICS {
                let Some(measured) = metrics.get(metric).and_then(JsonValue::as_f64) else {
                    continue;
                };
                if measured == 0.0 {
                    continue;
                }
                recorded.push(format!("\"{metric}\": {}", rule.apply(measured)));
            }
            if !recorded.is_empty() {
                lines.push(format!("    \"{entry_name}\": {{{}}}", recorded.join(", ")));
            }
        }
        if !lines.is_empty() {
            sections.push(format!("  \"{name}\": {{\n{}\n  }}", lines.join(",\n")));
        }
    }
    out.push_str(&sections.join(",\n"));
    out.push_str("\n}\n");
    Ok(out)
}

/// Render the one-line-per-metric gate table and return whether any
/// metric regressed beyond `threshold`.
pub fn render_gate(comparisons: &[Comparison], threshold: f64) -> (String, bool) {
    let mut out = String::new();
    let mut failed = false;
    let width = comparisons
        .iter()
        .map(|c| c.key.len())
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:<width$}  {:>14}  {:>14}  {:>7}  {:>4}  verdict\n",
        "metric", "baseline", "current", "ratio", "dir"
    ));
    for c in comparisons {
        let regressed = c.regressed(threshold);
        failed |= regressed;
        out.push_str(&format!(
            "{:<width$}  {:>14.1}  {:>14.1}  {:>6.2}x  {:>4}  {}\n",
            c.key,
            c.baseline,
            c.current,
            c.ratio(),
            if c.lower_is_better { "min" } else { "max" },
            if regressed { "REGRESSED" } else { "ok" }
        ));
    }
    (out, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "BENCH_stage_cost": {
            "decode_only_delta": {"stages_per_sec": 1000.0},
            "moe_heavy": {"stages_per_sec": 600.0}
        },
        "BENCH_sim": {
            "open_loop_1m": {"stages_per_sec": 90.0}
        }
    }"#;

    fn stage_cost_report(delta: f64, moe: f64) -> String {
        format!(
            r#"{{"schema": "x", "classes": {{
                "decode_only_delta": {{"stages_per_sec": {delta}}},
                "moe_heavy": {{"stages_per_sec": {moe}}},
                "unbaselined_extra": {{"stages_per_sec": 1.0}}
            }}}}"#
        )
    }

    #[test]
    fn healthy_numbers_pass() {
        let reports = vec![
            ("BENCH_stage_cost", stage_cost_report(950.0, 800.0)),
            (
                "BENCH_sim",
                r#"{"scenarios": {"open_loop_1m": {"stages_per_sec": 91.5}}}"#.into(),
            ),
        ];
        let cmp = gate_reports(BASELINE, &reports).expect("valid");
        assert_eq!(cmp.len(), 3);
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(!failed, "{table}");
        assert!(table.contains("ok"));
        assert!(!table.contains("REGRESSED"));
    }

    #[test]
    fn degraded_metric_fails_the_gate() {
        // 60% drop on the delta path: well past the 30% threshold.
        let reports = vec![("BENCH_stage_cost", stage_cost_report(400.0, 610.0))];
        let cmp = gate_reports(BASELINE, &reports).expect("valid");
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(failed, "{table}");
        assert!(table.contains("REGRESSED"));
        // The healthy metric still renders as ok.
        assert!(table.contains("ok"));
    }

    #[test]
    fn threshold_is_respected_at_the_boundary() {
        let c = Comparison {
            key: "k".into(),
            baseline: 100.0,
            current: 71.0,
            lower_is_better: false,
        };
        assert!(!c.regressed(0.30));
        let c = Comparison {
            key: "k".into(),
            baseline: 100.0,
            current: 69.0,
            lower_is_better: false,
        };
        assert!(c.regressed(0.30));
    }

    #[test]
    fn latency_metrics_regress_by_rising() {
        let mk = |current: f64| Comparison {
            key: "BENCH_scenarios/long_prefill_chunked/tbt_p99_ms".into(),
            baseline: 10.0,
            current,
            lower_is_better: true,
        };
        assert!(!mk(12.9).regressed(0.30), "within the rise budget");
        assert!(mk(13.1).regressed(0.30), "31% slower tail fails");
        assert!(!mk(1.0).regressed(0.30), "a faster tail never fails");
    }

    #[test]
    fn metric_direction_is_inferred_from_the_name() {
        for latency in [
            "tbt_p99_ms",
            "t2ft_p50_ms",
            "tier_interactive_tbt_p99_ms",
            "wall_s",
            "recovery_time_s",
            "paused_time_s",
        ] {
            assert!(lower_is_better(latency), "{latency}");
        }
        for throughput in [
            "stages_per_sec",
            "sim_tokens_per_sec",
            "goodput_tokens_per_s",
            "fault_interactive_attainment",
            "tier_interactive_attainment",
        ] {
            assert!(!lower_is_better(throughput), "{throughput}");
        }
    }

    #[test]
    fn gate_trips_on_latency_regressions_end_to_end() {
        // A baseline pinning a latency metric: the gate must fail when
        // the measured tail rises past the threshold, and the rendered
        // table must carry the direction.
        let baseline = r#"{
            "BENCH_scenarios": {
                "long_prefill_chunked": {"tbt_p99_ms": 5.0, "stages_per_sec": 100.0}
            }
        }"#;
        let report = r#"{"scenarios": {
            "long_prefill_chunked": {"tbt_p99_ms": 9.0, "stages_per_sec": 400.0}
        }}"#;
        let cmp = gate_reports(baseline, &[("BENCH_scenarios", report.into())]).expect("valid");
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(failed, "{table}");
        assert!(table.contains("tbt_p99_ms"));
        assert!(table.contains("min"));
        assert!(table.contains("REGRESSED"));
    }

    #[test]
    fn missing_baselined_entry_errors() {
        let reports = vec![(
            "BENCH_stage_cost",
            r#"{"classes": {"moe_heavy": {"stages_per_sec": 1.0}}}"#.into(),
        )];
        let err = gate_reports(BASELINE, &reports).expect_err("missing entry");
        assert!(err.contains("decode_only_delta"), "{err}");
    }

    #[test]
    fn reports_without_baseline_sections_are_skipped() {
        let reports = vec![("BENCH_scenarios", r#"{"scenarios": {}}"#.into())];
        let cmp = gate_reports(BASELINE, &reports).expect("valid");
        assert!(cmp.is_empty());
    }

    const FIXTURE: &str = r#"{
        "_self_test": {"must_trip": [
            {"key": "BENCH_stage_cost/decode_only_delta/stages_per_sec", "direction": "max"},
            {"key": "BENCH_stage_cost/moe_heavy/tbt_p99_ms", "direction": "min"},
            {"key": "BENCH_stage_cost/moe_heavy/replica_seconds", "direction": "min"}
        ]},
        "BENCH_stage_cost": {
            "decode_only_delta": {"stages_per_sec": 1e15},
            "moe_heavy": {"tbt_p99_ms": 1e-12, "replica_seconds": 1e-12}
        }
    }"#;

    const FIXTURE_REPORT: &str = r#"{"classes": {
        "decode_only_delta": {"stages_per_sec": 1000.0},
        "moe_heavy": {"tbt_p99_ms": 8.0, "replica_seconds": 14.5}
    }}"#;

    #[test]
    fn self_test_proves_every_declared_trip() {
        let reports = vec![("BENCH_stage_cost", FIXTURE_REPORT.to_string())];
        let outcome = run_self_test(FIXTURE, &reports, DEFAULT_THRESHOLD).expect("valid fixture");
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert!(outcome.table.contains("REGRESSED"));
    }

    #[test]
    fn self_test_reports_a_missed_trip() {
        // An achievable baseline: the throughput "regression" never
        // fires, and the self-test must say which declaration failed.
        let soft = FIXTURE.replace("1e15", "900.0");
        let reports = vec![("BENCH_stage_cost", FIXTURE_REPORT.to_string())];
        let outcome = run_self_test(&soft, &reports, DEFAULT_THRESHOLD).expect("valid fixture");
        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("decode_only_delta/stages_per_sec"));
        assert!(outcome.failures[0].contains("did not trip"));
    }

    #[test]
    fn self_test_catches_a_direction_mismatch() {
        // The fixture thinks replica_seconds gates upward ("max"): the
        // gate's own direction table says otherwise, and the self-test
        // is exactly where that disagreement must surface.
        let flipped = FIXTURE.replace(
            r#"{"key": "BENCH_stage_cost/moe_heavy/replica_seconds", "direction": "min"}"#,
            r#"{"key": "BENCH_stage_cost/moe_heavy/replica_seconds", "direction": "max"}"#,
        );
        let reports = vec![("BENCH_stage_cost", FIXTURE_REPORT.to_string())];
        let outcome = run_self_test(&flipped, &reports, DEFAULT_THRESHOLD).expect("valid fixture");
        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("gates as `min`"));
    }

    #[test]
    fn self_test_flags_a_declaration_nothing_gates() {
        let dangling = FIXTURE.replace(
            "BENCH_stage_cost/decode_only_delta/stages_per_sec",
            "BENCH_stage_cost/retired_entry/stages_per_sec",
        );
        // The baseline section still prices decode_only_delta, so the
        // gate runs; the declaration just points at nothing.
        let reports = vec![("BENCH_stage_cost", FIXTURE_REPORT.to_string())];
        let outcome = run_self_test(&dangling, &reports, DEFAULT_THRESHOLD).expect("valid");
        assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("never gated"));
    }

    #[test]
    fn self_test_requires_declarations() {
        let err = run_self_test(BASELINE, &[], DEFAULT_THRESHOLD).expect_err("no declarations");
        assert!(err.contains("_self_test"), "{err}");
        let empty = r#"{"_self_test": {"must_trip": []}}"#;
        let err = run_self_test(empty, &[], DEFAULT_THRESHOLD).expect_err("empty list");
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn written_baselines_headroom_by_rule_and_skip_zeros() {
        let report = r#"{"scenarios": {
            "drill": {"fleet_stages_per_s": 1000.0, "wall_s": 0.004, "tbt_p99_ms": 19.83,
                      "replica_seconds": 15.65, "scale_up_lag_s": 0.0,
                      "interactive_attainment": 0.992, "kv_reuse_fraction": 0.0,
                      "stages": 1879}
        }}"#;
        let text = write_baseline(&[("BENCH_cluster", report.to_string())]).expect("writable");
        let doc = parse(&text).expect("valid JSON");
        let drill = doc
            .get("BENCH_cluster")
            .and_then(|s| s.get("drill"))
            .expect("section");
        // Throughput floored at 45%, wall ceiling never under 0.5 s,
        // deterministic metrics exact.
        assert_eq!(
            drill.get("fleet_stages_per_s").unwrap().as_f64(),
            Some(450.0)
        );
        assert_eq!(drill.get("wall_s").unwrap().as_f64(), Some(0.5));
        assert_eq!(drill.get("tbt_p99_ms").unwrap().as_f64(), Some(19.83));
        assert_eq!(drill.get("replica_seconds").unwrap().as_f64(), Some(15.65));
        assert_eq!(
            drill.get("interactive_attainment").unwrap().as_f64(),
            Some(0.992)
        );
        // Zero measurements are ungateable (ratio() = 0) and skipped;
        // unlisted metrics stay out.
        assert!(drill.get("scale_up_lag_s").is_none());
        assert!(drill.get("kv_reuse_fraction").is_none());
        assert!(drill.get("stages").is_none());
    }

    #[test]
    fn a_regenerated_baseline_gates_its_own_reports_clean() {
        let reports = vec![
            ("BENCH_stage_cost", stage_cost_report(950.0, 800.0)),
            (
                "BENCH_sim",
                r#"{"scenarios": {"open_loop_1m": {"stages_per_sec": 91.5}}}"#.to_string(),
            ),
        ];
        let baseline = write_baseline(&reports).expect("writable");
        let cmp = gate_reports(&baseline, &reports).expect("valid");
        assert!(!cmp.is_empty());
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(!failed, "{table}");
        // Regeneration is deterministic: same reports, same bytes.
        assert_eq!(baseline, write_baseline(&reports).expect("writable"));
    }

    #[test]
    fn autoscale_metrics_gate_as_lower_is_better() {
        for metric in ["replica_seconds", "scale_up_lag_s"] {
            assert!(lower_is_better(metric), "{metric}");
        }
        assert!(!lower_is_better("scale_ups"));
    }

    #[test]
    fn improvements_never_fail() {
        let c = Comparison {
            key: "k".into(),
            baseline: 100.0,
            current: 5000.0,
            lower_is_better: false,
        };
        assert!(!c.regressed(DEFAULT_THRESHOLD));
    }
}
