//! The CI benchmark-regression gate: compares the metrics of freshly
//! produced `BENCH_*.json` reports against committed baselines and
//! fails on a regression beyond the threshold.
//!
//! Baselines live in `ci/bench_baseline.json` as
//! `{"<file-stem>": {"<entry>": {"stages_per_sec": <f64>}}}` — the
//! same entry names the bench binaries emit. Only metrics present in
//! the baseline are gated, so adding a bench entry never breaks CI
//! until a baseline is recorded for it.
//!
//! The gate is **direction-aware**: throughput-like metrics regress by
//! *dropping* below baseline, latency-like metrics (TBT/T2FT tails,
//! identified by name — see [`lower_is_better`]) regress by *rising*
//! above it. Latency metrics are simulated time, so they are
//! seed-deterministic and machine-independent; throughput metrics are
//! wall clock, so their threshold is generous (30% by default, shared
//! CI runners are noisy) and catches order-of-magnitude fast-path
//! regressions, not single-digit drift.

use duplex::sched::json::{parse, JsonValue};

/// Default allowed fractional drift before the gate fails.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Whether a metric regresses by rising (latencies and durations)
/// rather than by falling (throughput). Keyed on the metric name the
/// bench binaries emit: TBT / T2FT percentiles, anything per-tier
/// built on them, raw wall-clock durations (`wall_s`), and the
/// failure-drill time-to-recover (`recovery_time_s`). Attainment
/// metrics — including `fault_interactive_attainment` — keep the
/// default higher-is-better direction.
pub fn lower_is_better(metric: &str) -> bool {
    metric.starts_with("tbt_")
        || metric.starts_with("t2ft_")
        || metric.contains("_tbt_p")
        || metric.ends_with("wall_s")
        || metric.ends_with("recovery_time_s")
}

/// One gated metric's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// `<report>/<entry>/<metric>`.
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Latency-like metric: regression means rising above baseline.
    pub lower_is_better: bool,
}

impl Comparison {
    /// current / baseline (0 when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        self.current / self.baseline
    }

    /// Whether this metric regressed beyond `threshold`: a fractional
    /// drop for throughput metrics (0.30 fails below 70% of baseline),
    /// a fractional rise for latency metrics (0.30 fails above 130%).
    pub fn regressed(&self, threshold: f64) -> bool {
        if self.lower_is_better {
            self.ratio() > 1.0 + threshold
        } else {
            self.ratio() < 1.0 - threshold
        }
    }
}

/// Compare one report document against its baseline section: for every
/// `(entry, metric)` leaf in the baseline, look up the same path under
/// the report's `classes`/`scenarios` map and pair the values.
///
/// # Errors
///
/// Returns a message when a baselined entry or metric is missing from
/// the report — a silently dropped benchmark must fail the gate too.
pub fn compare_report(
    report_name: &str,
    baseline: &JsonValue,
    report: &JsonValue,
) -> Result<Vec<Comparison>, String> {
    let entries = report
        .get("classes")
        .or_else(|| report.get("scenarios"))
        .ok_or_else(|| format!("{report_name}: no `classes`/`scenarios` section"))?;
    let base_entries = baseline
        .as_object()
        .ok_or_else(|| format!("{report_name}: baseline section is not an object"))?;
    let mut comparisons = Vec::new();
    for (entry_name, base_metrics) in base_entries {
        let current_entry = entries
            .get(entry_name)
            .ok_or_else(|| format!("{report_name}: entry `{entry_name}` missing from report"))?;
        let metrics = base_metrics
            .as_object()
            .ok_or_else(|| format!("{report_name}/{entry_name}: baseline must be an object"))?;
        for (metric, base_value) in metrics {
            let baseline_value = base_value
                .as_f64()
                .ok_or_else(|| format!("{report_name}/{entry_name}/{metric}: non-numeric"))?;
            let current = current_entry
                .get(metric)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| {
                    format!("{report_name}/{entry_name}: metric `{metric}` missing from report")
                })?;
            comparisons.push(Comparison {
                key: format!("{report_name}/{entry_name}/{metric}"),
                baseline: baseline_value,
                current,
                lower_is_better: lower_is_better(metric),
            });
        }
    }
    Ok(comparisons)
}

/// Gate a set of `(report name, report text)` pairs against a baseline
/// document. Returns all comparisons; the caller renders them and
/// checks [`Comparison::regressed`].
///
/// # Errors
///
/// Propagates JSON and missing-entry errors as messages.
pub fn gate_reports(
    baseline_text: &str,
    reports: &[(&str, String)],
) -> Result<Vec<Comparison>, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let mut all = Vec::new();
    for (name, text) in reports {
        let Some(section) = baseline.get(name) else {
            continue; // no baseline recorded for this report yet
        };
        let report = parse(text).map_err(|e| format!("{name}: {e}"))?;
        all.extend(compare_report(name, section, &report)?);
    }
    Ok(all)
}

/// Render the one-line-per-metric gate table and return whether any
/// metric regressed beyond `threshold`.
pub fn render_gate(comparisons: &[Comparison], threshold: f64) -> (String, bool) {
    let mut out = String::new();
    let mut failed = false;
    let width = comparisons
        .iter()
        .map(|c| c.key.len())
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:<width$}  {:>14}  {:>14}  {:>7}  {:>4}  verdict\n",
        "metric", "baseline", "current", "ratio", "dir"
    ));
    for c in comparisons {
        let regressed = c.regressed(threshold);
        failed |= regressed;
        out.push_str(&format!(
            "{:<width$}  {:>14.1}  {:>14.1}  {:>6.2}x  {:>4}  {}\n",
            c.key,
            c.baseline,
            c.current,
            c.ratio(),
            if c.lower_is_better { "min" } else { "max" },
            if regressed { "REGRESSED" } else { "ok" }
        ));
    }
    (out, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "BENCH_stage_cost": {
            "decode_only_delta": {"stages_per_sec": 1000.0},
            "moe_heavy": {"stages_per_sec": 600.0}
        },
        "BENCH_sim": {
            "open_loop_1m": {"stages_per_sec": 90.0}
        }
    }"#;

    fn stage_cost_report(delta: f64, moe: f64) -> String {
        format!(
            r#"{{"schema": "x", "classes": {{
                "decode_only_delta": {{"stages_per_sec": {delta}}},
                "moe_heavy": {{"stages_per_sec": {moe}}},
                "unbaselined_extra": {{"stages_per_sec": 1.0}}
            }}}}"#
        )
    }

    #[test]
    fn healthy_numbers_pass() {
        let reports = vec![
            ("BENCH_stage_cost", stage_cost_report(950.0, 800.0)),
            (
                "BENCH_sim",
                r#"{"scenarios": {"open_loop_1m": {"stages_per_sec": 91.5}}}"#.into(),
            ),
        ];
        let cmp = gate_reports(BASELINE, &reports).expect("valid");
        assert_eq!(cmp.len(), 3);
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(!failed, "{table}");
        assert!(table.contains("ok"));
        assert!(!table.contains("REGRESSED"));
    }

    #[test]
    fn degraded_metric_fails_the_gate() {
        // 60% drop on the delta path: well past the 30% threshold.
        let reports = vec![("BENCH_stage_cost", stage_cost_report(400.0, 610.0))];
        let cmp = gate_reports(BASELINE, &reports).expect("valid");
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(failed, "{table}");
        assert!(table.contains("REGRESSED"));
        // The healthy metric still renders as ok.
        assert!(table.contains("ok"));
    }

    #[test]
    fn threshold_is_respected_at_the_boundary() {
        let c = Comparison {
            key: "k".into(),
            baseline: 100.0,
            current: 71.0,
            lower_is_better: false,
        };
        assert!(!c.regressed(0.30));
        let c = Comparison {
            key: "k".into(),
            baseline: 100.0,
            current: 69.0,
            lower_is_better: false,
        };
        assert!(c.regressed(0.30));
    }

    #[test]
    fn latency_metrics_regress_by_rising() {
        let mk = |current: f64| Comparison {
            key: "BENCH_scenarios/long_prefill_chunked/tbt_p99_ms".into(),
            baseline: 10.0,
            current,
            lower_is_better: true,
        };
        assert!(!mk(12.9).regressed(0.30), "within the rise budget");
        assert!(mk(13.1).regressed(0.30), "31% slower tail fails");
        assert!(!mk(1.0).regressed(0.30), "a faster tail never fails");
    }

    #[test]
    fn metric_direction_is_inferred_from_the_name() {
        for latency in [
            "tbt_p99_ms",
            "t2ft_p50_ms",
            "tier_interactive_tbt_p99_ms",
            "wall_s",
            "recovery_time_s",
        ] {
            assert!(lower_is_better(latency), "{latency}");
        }
        for throughput in [
            "stages_per_sec",
            "sim_tokens_per_sec",
            "goodput_tokens_per_s",
            "fault_interactive_attainment",
        ] {
            assert!(!lower_is_better(throughput), "{throughput}");
        }
    }

    #[test]
    fn gate_trips_on_latency_regressions_end_to_end() {
        // A baseline pinning a latency metric: the gate must fail when
        // the measured tail rises past the threshold, and the rendered
        // table must carry the direction.
        let baseline = r#"{
            "BENCH_scenarios": {
                "long_prefill_chunked": {"tbt_p99_ms": 5.0, "stages_per_sec": 100.0}
            }
        }"#;
        let report = r#"{"scenarios": {
            "long_prefill_chunked": {"tbt_p99_ms": 9.0, "stages_per_sec": 400.0}
        }}"#;
        let cmp = gate_reports(baseline, &[("BENCH_scenarios", report.into())]).expect("valid");
        let (table, failed) = render_gate(&cmp, DEFAULT_THRESHOLD);
        assert!(failed, "{table}");
        assert!(table.contains("tbt_p99_ms"));
        assert!(table.contains("min"));
        assert!(table.contains("REGRESSED"));
    }

    #[test]
    fn missing_baselined_entry_errors() {
        let reports = vec![(
            "BENCH_stage_cost",
            r#"{"classes": {"moe_heavy": {"stages_per_sec": 1.0}}}"#.into(),
        )];
        let err = gate_reports(BASELINE, &reports).expect_err("missing entry");
        assert!(err.contains("decode_only_delta"), "{err}");
    }

    #[test]
    fn reports_without_baseline_sections_are_skipped() {
        let reports = vec![("BENCH_scenarios", r#"{"scenarios": {}}"#.into())];
        let cmp = gate_reports(BASELINE, &reports).expect("valid");
        assert!(cmp.is_empty());
    }

    #[test]
    fn improvements_never_fail() {
        let c = Comparison {
            key: "k".into(),
            baseline: 100.0,
            current: 5000.0,
            lower_is_better: false,
        };
        assert!(!c.regressed(DEFAULT_THRESHOLD));
    }
}
