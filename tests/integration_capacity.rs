//! Capacity accounting end to end: weight duplication shrinks KV
//! budgets, which shrinks achievable batch, which shrinks throughput
//! (Figs. 5(c) and 16).

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::exec::DEVICE_MEM_BYTES;
use duplex::system::parallel::CapacityPlan;
use duplex::system::{SystemConfig, SystemExecutor};
use duplex::{run, RunConfig};

#[test]
fn hetero_capacity_limits_batch_at_long_contexts() {
    let model = ModelConfig::mixtral_8x7b();
    // Long responses: each request reserves (Lin + Lout) * 128 KiB ~ 1 GB,
    // so the hetero system's ~67 GB KV pool caps the batch near 60 while
    // the GPU system's ~226 GB pool does not bind. Prefills stay short so
    // decode stages dominate the measurement.
    let workload = Workload::fixed(512, 7680);
    let requested = 128;
    let mut cfg = RunConfig::closed_loop(
        model.clone(),
        SystemConfig::hetero(),
        workload.clone(),
        requested,
        96,
    );
    cfg.max_stages = 4000;
    let het = run(cfg.clone());
    cfg.system = SystemConfig::gpu(4, 1);
    let gpu = run(cfg);
    assert!(
        het.mean_batch < 0.8 * gpu.mean_batch,
        "hetero batch {} vs gpu {}",
        het.mean_batch,
        gpu.mean_batch
    );
}

#[test]
fn lifting_the_capacity_limit_recovers_throughput() {
    // Mixtral on the hetero system with ~1 GB KV reservations: the
    // capacity limit caps the batch near 60 of the requested 128.
    // Lifting it grows the achieved batch and throughput (the
    // "no capacity limit" bars of Fig. 5(c)). The magnitude is modest
    // in our model because Logic-PIM's experts go compute-bound at
    // these batch sizes; see EXPERIMENTS.md.
    let model = ModelConfig::mixtral_8x7b();
    let mut cfg = RunConfig::closed_loop(
        model,
        SystemConfig::hetero(),
        Workload::fixed(512, 7680),
        128,
        96,
    );
    cfg.max_stages = 4000;
    let limited = run(cfg.clone());
    cfg.kv_capacity_override = Some(u64::MAX);
    let unlimited = run(cfg);
    assert!(
        unlimited.mean_batch > 1.3 * limited.mean_batch,
        "unlimited batch {} vs limited {}",
        unlimited.mean_batch,
        limited.mean_batch
    );
    assert!(
        unlimited.throughput_tokens_per_s > 1.02 * limited.throughput_tokens_per_s,
        "unlimited {} vs limited {}",
        unlimited.throughput_tokens_per_s,
        limited.throughput_tokens_per_s
    );
}

#[test]
fn kv_reservations_never_exceed_budget() {
    let model = ModelConfig::mixtral_8x7b();
    let ex = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
    let kv = ex.kv_capacity_bytes();
    let cfg = RunConfig::closed_loop(
        model.clone(),
        SystemConfig::gpu(4, 1),
        Workload::fixed(4096, 512),
        256,
        64,
    );
    let r = run(cfg);
    let per_request = model.kv_bytes(4096 + 512);
    for stage in &r.report.stages {
        assert!(
            stage.batch as u64 * per_request <= kv,
            "stage batch {} overflows KV budget",
            stage.batch
        );
    }
}

#[test]
fn oversized_models_are_rejected() {
    let model = ModelConfig::grok1(); // 314B params = 628 GB of FP16
    let result =
        std::panic::catch_unwind(|| CapacityPlan::homogeneous(&model, 1, 4, DEVICE_MEM_BYTES));
    assert!(result.is_err(), "Grok1 cannot fit 4 devices");
    // But it fits the paper's 2x8 cluster.
    let plan = CapacityPlan::homogeneous(&model, 2, 8, DEVICE_MEM_BYTES);
    assert!(plan.kv_capacity_bytes > 0);
}

#[test]
fn split_pools_fit_and_shrink_kv() {
    let model = ModelConfig::mixtral_8x7b();
    let split = CapacityPlan::split(&model, 2, 2, DEVICE_MEM_BYTES);
    let homo = CapacityPlan::homogeneous(&model, 1, 4, DEVICE_MEM_BYTES);
    assert!(split.kv_capacity_bytes < homo.kv_capacity_bytes);
    assert_eq!(split.weight_bytes_stored, 2 * model.weight_bytes());
}
