//! End-to-end integration: every system configuration serves a small
//! closed-loop workload correctly and the cross-system orderings the
//! paper reports hold.

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

fn small_cfg(model: ModelConfig, system: SystemConfig) -> RunConfig {
    RunConfig::closed_loop(model, system, Workload::fixed(256, 16), 8, 16)
}

#[test]
fn all_systems_complete_all_requests() {
    let model = ModelConfig::mixtral_8x7b();
    for system in [
        SystemConfig::gpu(4, 1),
        SystemConfig::gpu(4, 1).doubled(),
        SystemConfig::duplex(4, 1),
        SystemConfig::duplex_pe(4, 1),
        SystemConfig::duplex_pe_et(4, 1),
        SystemConfig::bank_pim(4, 1),
        SystemConfig::hetero(),
    ] {
        let name = system.name.clone();
        let r = run(small_cfg(model.clone(), system));
        assert_eq!(r.report.completed.len(), 16, "{name}");
        for rec in &r.report.completed {
            assert_eq!(rec.tokens, rec.request.output_len, "{name}");
        }
        assert!(r.throughput_tokens_per_s > 0.0, "{name}");
        assert!(r.energy_per_token_j > 0.0, "{name}");
    }
}

#[test]
fn duplex_beats_gpu_on_every_moe_model() {
    for model in [ModelConfig::mixtral_8x7b(), ModelConfig::glam()] {
        let (d, n) = SystemConfig::default_cluster(&model);
        let gpu = run(small_cfg(model.clone(), SystemConfig::gpu(d, n)));
        let dup = run(small_cfg(model.clone(), SystemConfig::duplex_pe_et(d, n)));
        assert!(
            dup.throughput_tokens_per_s > 1.3 * gpu.throughput_tokens_per_s,
            "{}: duplex {} vs gpu {}",
            model.name,
            dup.throughput_tokens_per_s,
            gpu.throughput_tokens_per_s
        );
        assert!(
            dup.energy_per_token_j < gpu.energy_per_token_j,
            "{}",
            model.name
        );
    }
}

#[test]
fn same_seed_reproduces_exactly() {
    let model = ModelConfig::mixtral_8x7b();
    let a = run(small_cfg(model.clone(), SystemConfig::duplex_pe(4, 1)));
    let b = run(small_cfg(model, SystemConfig::duplex_pe(4, 1)));
    assert_eq!(a.report.total_time_s, b.report.total_time_s);
    assert_eq!(a.cost.seconds, b.cost.seconds);
    assert_eq!(a.cost.energy.total(), b.cost.energy.total());
}

#[test]
fn dense_models_run_on_all_devices() {
    for model in [ModelConfig::opt_66b(), ModelConfig::llama3_70b()] {
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex(4, 1),
            SystemConfig::bank_pim(4, 1),
        ] {
            let name = system.name.clone();
            let r = run(small_cfg(model.clone(), system));
            assert_eq!(r.report.completed.len(), 16, "{} on {name}", model.name);
            // No MoE bucket for dense models.
            assert_eq!(r.cost.time.moe, 0.0, "{} on {name}", model.name);
        }
    }
}

#[test]
fn grok_runs_on_two_nodes() {
    let model = ModelConfig::grok1();
    let r = run(small_cfg(model, SystemConfig::duplex_pe_et(8, 2)));
    assert_eq!(r.report.completed.len(), 16);
    assert!(
        r.cost.time.comm > 0.0,
        "inter-node EP must cost communication"
    );
}

#[test]
fn two_x_gpu_beats_gpu() {
    let model = ModelConfig::mixtral_8x7b();
    let gpu = run(small_cfg(model.clone(), SystemConfig::gpu(4, 1)));
    let gpu2 = run(small_cfg(model, SystemConfig::gpu(4, 1).doubled()));
    assert!(gpu2.throughput_tokens_per_s > gpu.throughput_tokens_per_s);
}
