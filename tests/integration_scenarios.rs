//! Seeded determinism of the workload/scenario subsystem: the same
//! `Workload`/`Arrivals` seed must produce *byte-identical* report
//! summaries across two runs. This guards the lazy request generation
//! (PR 2) and the scenario scheduler's independent RNG streams — any
//! hidden nondeterminism (iteration order, shared RNG, wall-clock
//! leakage) shows up as a summary mismatch.

use duplex::model::ModelConfig;
use duplex::sched::{
    Arrivals, ConversationSpec, PolicyKind, Scenario, ScenarioSimulation, SimReport, Simulation,
    SimulationConfig, TraceRequest, Workload,
};
use duplex::system::{SystemConfig, SystemExecutor};

/// Every aggregate of a report, rendered with exact bit patterns so
/// equality is byte-for-byte, not approximate.
fn summary(report: &SimReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "stages={} mixed={} batch_sum={} token_sum={}\n",
        report.stage_stats.stages,
        report.stage_stats.mixed,
        report.stage_stats.batch_sum,
        report.stage_stats.token_sum,
    ));
    out.push_str(&format!(
        "total_time_bits={:016x} completed={}\n",
        report.total_time_s.to_bits(),
        report.completed.len()
    ));
    for r in &report.completed {
        out.push_str(&format!(
            "req id={} arrival={:016x} in={} out={} first={:016x} last={:016x} tokens={}\n",
            r.request.id,
            r.request.arrival_s.to_bits(),
            r.request.input_len,
            r.request.output_len,
            r.first_token_s.to_bits(),
            r.last_token_s.to_bits(),
            r.tokens,
        ));
    }
    let tbt = report.tbt();
    out.push_str(&format!(
        "tbt p50={:016x} p99={:016x} mean={:016x} count={}\n",
        tbt.p50.to_bits(),
        tbt.p99.to_bits(),
        tbt.mean.to_bits(),
        tbt.count
    ));
    for t in &report.slo.tiers {
        out.push_str(&format!(
            "tier {} completed={} met={} good={}\n",
            t.name, t.completed, t.met, t.good_tokens
        ));
    }
    out.push_str(&format!("kv_reuse={:?}\n", report.kv_reuse));
    out
}

fn executor() -> SystemExecutor {
    SystemExecutor::new(
        SystemConfig::duplex_pe_et(4, 1),
        ModelConfig::mixtral_8x7b(),
        7,
    )
}

fn sim_config(ex: &SystemExecutor, max_batch: usize) -> SimulationConfig {
    SimulationConfig {
        max_batch,
        kv_capacity_bytes: ex.kv_capacity_bytes(),
        kv_bytes_per_token: ex.model().kv_bytes_per_token(),
        ..SimulationConfig::default()
    }
}

#[test]
fn base_simulation_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let w = Workload::gaussian(128, 16).with_seed(42);
        Simulation::poisson(cfg, w, 400.0, 40).run(&mut ex)
    };
    assert_eq!(summary(&run()), summary(&run()));
}

#[test]
fn bursty_scenario_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "bursty",
            Workload::gaussian(96, 12).with_seed(7),
            Arrivals::Bursty {
                base_qps: 10.0,
                burst_qps: 800.0,
                mean_off_s: 0.05,
                mean_on_s: 0.02,
            },
            30,
        );
        ScenarioSimulation::new(cfg, scenario).run(PolicyKind::Fcfs.build().as_mut(), &mut ex)
    };
    assert_eq!(summary(&run()), summary(&run()));
}

#[test]
fn diurnal_scenario_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "diurnal",
            Workload::gaussian(96, 12).with_seed(9),
            Arrivals::Diurnal {
                mean_qps: 300.0,
                period_s: 0.5,
                amplitude: 0.8,
            },
            30,
        );
        ScenarioSimulation::new(cfg, scenario)
            .run(PolicyKind::ShortestPromptFirst.build().as_mut(), &mut ex)
    };
    assert_eq!(summary(&run()), summary(&run()));
}

#[test]
fn multi_turn_tiered_scenario_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "chat",
            Workload::gaussian(64, 8).with_seed(3),
            Arrivals::Poisson { qps: 500.0 },
            20,
        )
        .with_conversation(ConversationSpec::chat(0.8, 3, 0.01, 24))
        .with_tiers(Scenario::default_tiers(0.005));
        ScenarioSimulation::new(cfg, scenario)
            .run(PolicyKind::PriorityTiers.build().as_mut(), &mut ex)
    };
    let a = run();
    let b = run();
    assert_eq!(summary(&a), summary(&b));
    // And the scenario actually exercised follow-ups + SLO accounting.
    assert!(a.completed.len() > 20);
    assert!(a.slo.completed() > 0);
}

#[test]
fn trace_replay_is_deterministic_and_seed_independent() {
    // A trace pins arrivals and shapes, so even *different* workload
    // seeds must replay identically.
    let trace: Vec<TraceRequest> = (0..25u64)
        .map(|i| TraceRequest {
            arrival_s: i as f64 * 0.003,
            input_len: 64 + (i % 5) * 32,
            output_len: 8 + (i % 3) * 4,
        })
        .collect();
    let run = |seed: u64| {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "replay",
            Workload::gaussian(999, 99).with_seed(seed),
            Arrivals::trace(trace.clone()),
            25,
        );
        ScenarioSimulation::new(cfg, scenario).run(PolicyKind::Fcfs.build().as_mut(), &mut ex)
    };
    assert_eq!(summary(&run(1)), summary(&run(1)));
    assert_eq!(summary(&run(1)), summary(&run(2)));
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the summary is sensitive at all.
    let run = |seed: u64| {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let w = Workload::gaussian(128, 16).with_seed(seed);
        Simulation::poisson(cfg, w, 400.0, 40).run(&mut ex)
    };
    assert_ne!(summary(&run(1)), summary(&run(2)));
}
