//! Seeded determinism of the workload/scenario subsystem: the same
//! `Workload`/`Arrivals` seed must produce *byte-identical* report
//! summaries across two runs. This guards the lazy request generation
//! (PR 2) and the scenario scheduler's independent RNG streams — any
//! hidden nondeterminism (iteration order, shared RNG, wall-clock
//! leakage) shows up as a summary mismatch.

use duplex::model::ops::StageShape;
use duplex::model::ModelConfig;
use duplex::sched::{
    Arrivals, ClusterReport, ClusterSimulation, ConversationSpec, PolicyKind, PreemptMode,
    PreemptSpec, PreemptionPolicy, PriorityTiers, ReplicaConfig, RouterKind, Scenario,
    ScenarioSimulation, SchedulingPolicy, ShedBatchTier, SimReport, Simulation, SimulationConfig,
    SloTier, StageExecutor, StageOutcome, TraceRequest, Workload,
};
use duplex::system::{SystemConfig, SystemExecutor};

/// Every aggregate of a report, rendered with exact bit patterns so
/// equality is byte-for-byte, not approximate.
fn summary(report: &SimReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "stages={} mixed={} batch_sum={} token_sum={}\n",
        report.stage_stats.stages,
        report.stage_stats.mixed,
        report.stage_stats.batch_sum,
        report.stage_stats.token_sum,
    ));
    out.push_str(&format!(
        "total_time_bits={:016x} completed={}\n",
        report.total_time_s.to_bits(),
        report.completed.len()
    ));
    for r in &report.completed {
        out.push_str(&format!(
            "req id={} arrival={:016x} in={} out={} first={:016x} last={:016x} tokens={}\n",
            r.request.id,
            r.request.arrival_s.to_bits(),
            r.request.input_len,
            r.request.output_len,
            r.first_token_s.to_bits(),
            r.last_token_s.to_bits(),
            r.tokens,
        ));
    }
    let tbt = report.tbt();
    out.push_str(&format!(
        "tbt p50={:016x} p99={:016x} mean={:016x} count={}\n",
        tbt.p50.to_bits(),
        tbt.p99.to_bits(),
        tbt.mean.to_bits(),
        tbt.count
    ));
    for t in &report.slo.tiers {
        out.push_str(&format!(
            "tier {} completed={} met={} good={}\n",
            t.name, t.completed, t.met, t.good_tokens
        ));
    }
    out.push_str(&format!("kv_reuse={:?}\n", report.kv_reuse));
    out
}

fn executor() -> SystemExecutor {
    SystemExecutor::new(
        SystemConfig::duplex_pe_et(4, 1),
        ModelConfig::mixtral_8x7b(),
        7,
    )
}

fn sim_config(ex: &SystemExecutor, max_batch: usize) -> SimulationConfig {
    SimulationConfig {
        max_batch,
        kv_capacity_bytes: ex.kv_capacity_bytes(),
        kv_bytes_per_token: ex.model().kv_bytes_per_token(),
        ..SimulationConfig::default()
    }
}

#[test]
fn base_simulation_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let w = Workload::gaussian(128, 16).with_seed(42);
        Simulation::poisson(cfg, w, 400.0, 40).run(&mut ex)
    };
    assert_eq!(summary(&run()), summary(&run()));
}

#[test]
fn bursty_scenario_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "bursty",
            Workload::gaussian(96, 12).with_seed(7),
            Arrivals::Bursty {
                base_qps: 10.0,
                burst_qps: 800.0,
                mean_off_s: 0.05,
                mean_on_s: 0.02,
            },
            30,
        );
        ScenarioSimulation::new(cfg, scenario).run(PolicyKind::Fcfs.build().as_mut(), &mut ex)
    };
    assert_eq!(summary(&run()), summary(&run()));
}

#[test]
fn diurnal_scenario_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "diurnal",
            Workload::gaussian(96, 12).with_seed(9),
            Arrivals::Diurnal {
                mean_qps: 300.0,
                period_s: 0.5,
                amplitude: 0.8,
            },
            30,
        );
        ScenarioSimulation::new(cfg, scenario)
            .run(PolicyKind::ShortestPromptFirst.build().as_mut(), &mut ex)
    };
    assert_eq!(summary(&run()), summary(&run()));
}

#[test]
fn multi_turn_tiered_scenario_is_seed_deterministic() {
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "chat",
            Workload::gaussian(64, 8).with_seed(3),
            Arrivals::Poisson { qps: 500.0 },
            20,
        )
        .with_conversation(ConversationSpec::chat(0.8, 3, 0.01, 24))
        .with_tiers(Scenario::default_tiers(0.005));
        ScenarioSimulation::new(cfg, scenario)
            .run(PolicyKind::PriorityTiers.build().as_mut(), &mut ex)
    };
    let a = run();
    let b = run();
    assert_eq!(summary(&a), summary(&b));
    // And the scenario actually exercised follow-ups + SLO accounting.
    assert!(a.completed.len() > 20);
    assert!(a.slo.completed() > 0);
}

#[test]
fn chunked_prefill_scenario_is_seed_deterministic() {
    // Chunked prefill adds held prefill-with-past slices and delayed
    // decode joins to the stage stream; the whole pipeline (scheduler,
    // chunk budgeting, delta fast path) must stay byte-identical across
    // runs of the same seed.
    let run = || {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "chunked",
            Workload::gaussian(384, 24).with_seed(13),
            Arrivals::Poisson { qps: 250.0 },
            25,
        )
        .with_conversation(ConversationSpec::chat(0.6, 3, 0.01, 48))
        .with_tiers(Scenario::default_tiers(0.004))
        .with_prefill_chunk(96);
        ScenarioSimulation::new(cfg, scenario)
            .run(PolicyKind::PriorityTiers.build().as_mut(), &mut ex)
    };
    let a = run();
    let b = run();
    assert_eq!(summary(&a), summary(&b));
    // The run actually chunked: more stages than generated tokens'
    // share of stages alone would need, and mixed stages dominate the
    // admission phases.
    assert!(a.stage_stats.mixed > 25, "{:?}", a.stage_stats);
    assert!(a.completed.len() >= 25);

    // The per-tier TBT digests are part of the deterministic surface
    // too (they drive the CI latency gate).
    let tails_a: Vec<u64> = a
        .slo
        .tiers
        .iter()
        .map(|t| t.tbt_p99_s().to_bits())
        .collect();
    let tails_b: Vec<u64> = b
        .slo
        .tiers
        .iter()
        .map(|t| t.tbt_p99_s().to_bits())
        .collect();
    assert_eq!(tails_a, tails_b);
}

#[test]
fn chunked_and_unchunked_complete_the_same_requests() {
    let run = |chunk: u64| {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "pair",
            Workload::gaussian(384, 16).with_seed(29),
            Arrivals::Poisson { qps: 400.0 },
            20,
        )
        .with_prefill_chunk(chunk);
        ScenarioSimulation::new(cfg, scenario).run(PolicyKind::Fcfs.build().as_mut(), &mut ex)
    };
    let plain = run(0);
    let chunked = run(128);
    assert_eq!(plain.completed.len(), chunked.completed.len());
    assert_eq!(plain.total_tokens(), chunked.total_tokens());
    assert!(chunked.stage_stats.stages > plain.stage_stats.stages);
}

#[test]
fn trace_replay_is_deterministic_and_seed_independent() {
    // A trace pins arrivals and shapes, so even *different* workload
    // seeds must replay identically.
    let trace: Vec<TraceRequest> = (0..25u64)
        .map(|i| TraceRequest {
            arrival_s: i as f64 * 0.003,
            input_len: 64 + (i % 5) * 32,
            output_len: 8 + (i % 3) * 4,
        })
        .collect();
    let run = |seed: u64| {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let scenario = Scenario::new(
            "replay",
            Workload::gaussian(999, 99).with_seed(seed),
            Arrivals::trace(trace.clone()),
            25,
        );
        ScenarioSimulation::new(cfg, scenario).run(PolicyKind::Fcfs.build().as_mut(), &mut ex)
    };
    assert_eq!(summary(&run(1)), summary(&run(1)));
    assert_eq!(summary(&run(1)), summary(&run(2)));
}

/// Byte-exact rendering of a whole fleet report: every replica's
/// summary plus the merged fleet aggregates.
fn cluster_summary(report: &ClusterReport) -> String {
    let mut out = format!(
        "router={} total_time_bits={:016x} completed={} imbalance_bits={:016x}\n",
        report.router,
        report.total_time_s.to_bits(),
        report.completed(),
        report.load_imbalance().to_bits(),
    );
    let fleet_tbt = report.tbt();
    out.push_str(&format!(
        "fleet tbt p99={:016x} mean={:016x} count={} kv_reuse={:?}\n",
        fleet_tbt.p99.to_bits(),
        fleet_tbt.mean.to_bits(),
        fleet_tbt.count,
        report.kv_reuse(),
    ));
    for t in &report.slo().tiers {
        out.push_str(&format!(
            "fleet tier {} completed={} met={} good={}\n",
            t.name, t.completed, t.met, t.good_tokens
        ));
    }
    for (i, r) in report.replicas.iter().enumerate() {
        out.push_str(&format!("--- replica {i} ---\n"));
        out.push_str(&summary(r));
    }
    out
}

fn cluster_scenario() -> Scenario {
    Scenario::new(
        "cluster",
        Workload::gaussian(96, 10).with_seed(29),
        Arrivals::Bursty {
            base_qps: 50.0,
            burst_qps: 900.0,
            mean_off_s: 0.05,
            mean_on_s: 0.03,
        },
        40,
    )
    .with_conversation(ConversationSpec::chat(0.8, 3, 0.01, 24))
    .with_tiers(Scenario::default_tiers(0.005))
}

fn run_cluster_fleet(kind: RouterKind) -> ClusterReport {
    // A heterogeneous 3-replica fleet: two Duplex nodes and one GPU
    // node, each with its own executor and KV budget.
    let systems = [
        SystemConfig::duplex_pe_et(4, 1),
        SystemConfig::duplex_pe_et(4, 1),
        SystemConfig::gpu(4, 1),
    ];
    let model = ModelConfig::mixtral_8x7b();
    let mut executors: Vec<SystemExecutor> = systems
        .iter()
        .map(|s| SystemExecutor::new(s.clone(), model.clone(), 7))
        .collect();
    let configs: Vec<ReplicaConfig> = executors
        .iter()
        .enumerate()
        .map(|(i, ex)| {
            ReplicaConfig::new(sim_config(ex, 8)).with_weight(if i < 2 { 2.0 } else { 1.0 })
        })
        .collect();
    let mut policies: Vec<Box<dyn SchedulingPolicy>> =
        (0..3).map(|_| PolicyKind::PriorityTiers.build()).collect();
    ClusterSimulation::new(configs, cluster_scenario()).run(
        kind.build().as_mut(),
        &mut policies,
        &mut executors,
    )
}

#[test]
fn cluster_reports_are_seed_deterministic() {
    // The whole fleet — global arrival stream, router placement,
    // per-replica scheduling, merged digests — must be byte-identical
    // across runs for every shipped router.
    for kind in RouterKind::ALL {
        let a = run_cluster_fleet(kind);
        let b = run_cluster_fleet(kind);
        assert_eq!(
            cluster_summary(&a),
            cluster_summary(&b),
            "router {}",
            kind.name()
        );
        // And the fleet actually exercised multi-turn + tiers.
        assert!(a.completed() > 40, "follow-ups ran ({})", a.completed());
        assert!(a.slo().completed() > 0);
    }
}

#[test]
fn cluster_routers_place_differently_but_serve_everything() {
    let rr = run_cluster_fleet(RouterKind::RoundRobin);
    let aff = run_cluster_fleet(RouterKind::SessionAffinity);
    // Placement changes retirement order, retirement order changes
    // which continuation dice each conversation draws, so the offered
    // round count itself varies a little between routers. Every router
    // must still serve at least every initial request, and the fleets
    // stay within a few follow-up rounds of each other.
    assert!(rr.completed() >= 40, "rr serves every initial request");
    assert!(
        aff.completed() >= 40,
        "affinity serves every initial request"
    );
    let (lo, hi) = (
        rr.completed().min(aff.completed()),
        rr.completed().max(aff.completed()),
    );
    assert!(
        hi - lo <= hi / 10,
        "offered rounds stay comparable: rr {} vs affinity {}",
        rr.completed(),
        aff.completed()
    );
    assert_ne!(
        cluster_summary(&rr),
        cluster_summary(&aff),
        "routers actually change placement"
    );
    // Affinity finds resident histories that round-robin scatters.
    assert!(aff.kv_reuse().reuse_fraction() > rr.kv_reuse().reuse_fraction());
}

/// Deterministic linear stage cost: the preemption acceptance gate
/// needs exact control of stage timing, independent of the system
/// crate's cost model.
struct LinearCost;
impl StageExecutor for LinearCost {
    fn execute(&mut self, shape: &StageShape) -> StageOutcome {
        let prefill: u64 = shape.prefill_len.iter().sum();
        StageOutcome {
            seconds: 0.002 + 1.5e-4 * prefill as f64 + 1e-4 * shape.decode_ctx.len() as f64,
        }
    }
}

fn preempt_scenario() -> Scenario {
    Scenario::new(
        "preempt-gate",
        Workload::gaussian(64, 192).with_seed(21),
        Arrivals::Poisson { qps: 16.0 },
        400,
    )
    .with_tiers(vec![
        SloTier::new("interactive", 0.5, 0, 0.035, 0.0),
        SloTier::new("batch", 0.5, 2, 60.0, 0.0),
    ])
    .with_prefill_chunk(64)
}

fn run_preempt_gate(policy: &mut dyn SchedulingPolicy) -> SimReport {
    // KV-bound: capacity fits ~5 concurrent (input + output)
    // reservations, so running batch decodes block interactive
    // admission on bytes, not slots.
    let cfg = SimulationConfig {
        max_batch: 8,
        kv_capacity_bytes: 1536,
        kv_bytes_per_token: 1,
        ..SimulationConfig::default()
    };
    ScenarioSimulation::new(cfg, preempt_scenario()).run(policy, &mut LinearCost)
}

#[test]
fn preemption_lifts_interactive_attainment_over_shedding() {
    // The acceptance gate for the preemptive scheduler (ISSUE 10):
    // near saturation, pausing batch-tier decodes (priced KV swap-out
    // or recompute, whichever the cost model says is cheaper for that
    // victim) must beat admission-side shedding on interactive SLO
    // attainment while keeping at least 90% of the batch tier's
    // goodput.
    let shed = run_preempt_gate(&mut ShedBatchTier::new(Box::new(PriorityTiers), 0.5, 2));
    // Crossover at 150 resident tokens: the 64..~256-token victim
    // spread straddles it, so both restore paths see traffic.
    let spec = PreemptSpec::new()
        .with_swap_link(2e4, 7.5e-3)
        .with_recompute_rate(1e4);
    let preempt = run_preempt_gate(&mut PreemptionPolicy::new(Box::new(PriorityTiers), spec));

    assert_eq!(shed.completed.len(), 400);
    assert_eq!(preempt.completed.len(), 400, "paused work is never dropped");
    let interactive = |r: &SimReport| r.slo.tiers[0].attainment();
    assert!(
        interactive(&preempt) > interactive(&shed) + 0.05,
        "preempt {} vs shed {}",
        interactive(&preempt),
        interactive(&shed)
    );
    let batch_good = |r: &SimReport| r.slo.tiers[1].good_tokens;
    assert!(
        batch_good(&preempt) as f64 >= 0.9 * batch_good(&shed) as f64,
        "batch goodput {} vs shed {}",
        batch_good(&preempt),
        batch_good(&shed)
    );

    // Under one Auto spec both restore paths ran: the per-victim
    // cost-model choice split the ctx spread across swap and
    // recompute. The single-mode runs pin that it really is the mode
    // doing the splitting, not chance.
    assert!(preempt.preempt.preemptions > 0);
    assert!(preempt.preempt.swaps > 0, "{:?}", preempt.preempt);
    assert!(preempt.preempt.recomputes > 0, "{:?}", preempt.preempt);
    assert_eq!(preempt.preempt.resumes, preempt.preempt.preemptions);
    let swap_only = run_preempt_gate(&mut PreemptionPolicy::new(
        Box::new(PriorityTiers),
        spec.with_mode(PreemptMode::SwapOnly),
    ));
    assert!(
        swap_only.preempt.swaps > preempt.preempt.swaps,
        "forcing SwapOnly parks victims the cost model would recompute: {:?} vs {:?}",
        swap_only.preempt,
        preempt.preempt
    );
    let recompute_only = run_preempt_gate(&mut PreemptionPolicy::new(
        Box::new(PriorityTiers),
        spec.with_mode(PreemptMode::RecomputeOnly),
    ));
    assert_eq!(recompute_only.preempt.swaps, 0, "RecomputeOnly never parks");

    // The preempting run is part of the deterministic surface.
    let again = run_preempt_gate(&mut PreemptionPolicy::new(Box::new(PriorityTiers), spec));
    assert_eq!(summary(&preempt), summary(&again));
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the summary is sensitive at all.
    let run = |seed: u64| {
        let mut ex = executor();
        let cfg = sim_config(&ex, 8);
        let w = Workload::gaussian(128, 16).with_seed(seed);
        Simulation::poisson(cfg, w, 400.0, 40).run(&mut ex)
    };
    assert_ne!(summary(&run(1)), summary(&run(2)));
}
