//! The cluster subsystem's acceptance claims, end to end at quick
//! scale: on the Grok-scale (2x8-devices-per-replica, 4-replica)
//! multi-turn + SLO-tiered fleet of `experiments::cluster_suite`,
//!
//! * session-affinity routing beats round-robin on fleet KV-reuse
//!   fraction *and* fleet TBT p99 (multi-turn prefix reuse survives
//!   the load balancer, so follow-up prefills shrink);
//! * least-outstanding-work routing beats round-robin on interactive
//!   SLO attainment (the capacity-weighted balancer stops overfeeding
//!   the fleet's slow replica);
//!
//! and a one-replica cluster is bit-for-bit the plain
//! `ScenarioSimulation` under every router. All numbers are simulated
//! time: seed-deterministic, so these are exact assertions, and the
//! same values land in `BENCH_cluster.json` where the CI gate pins
//! them.

use duplex::experiments::{
    autoscale_drill, build_cluster, cluster_suite, grok_disagg, run_cluster, run_cluster_with,
    ClusterRow, ClusterSpec, Scale,
};
use duplex::model::ModelConfig;
use duplex::sched::{
    Arrivals, ClusterConfig, ClusterSimulation, ClusterSnapshot, ConversationSpec, PolicyKind,
    ReplicaConfig, RouterKind, Scenario, ScenarioSimulation, SchedulingPolicy, SimulationConfig,
    Workload,
};
use duplex::system::{SystemConfig, SystemExecutor};

fn grok_rows() -> Vec<ClusterRow> {
    let suite = cluster_suite(&Scale::quick());
    let spec = suite
        .iter()
        .find(|s| s.name == "grok_chat_tiered")
        .expect("the suite ships the grok fleet");
    RouterKind::ALL
        .iter()
        .map(|kind| {
            let mut router = kind.build();
            let report = run_cluster(spec, router.as_mut());
            ClusterRow::of(spec, kind.name(), &report)
        })
        .collect()
}

#[test]
fn session_affinity_beats_round_robin_on_reuse_and_tail() {
    let rows = grok_rows();
    let row = |name: &str| {
        rows.iter()
            .find(|r| r.router == name)
            .expect("router row exists")
    };
    let rr = row("round-robin");
    let aff = row("session-affinity");
    assert_eq!(rr.completed, aff.completed, "same offered rounds");
    // KV reuse: affinity keeps follow-ups next to their parked KV.
    assert!(
        aff.kv_reuse_fraction > rr.kv_reuse_fraction + 0.2,
        "affinity reuse {} vs round-robin {}",
        aff.kv_reuse_fraction,
        rr.kv_reuse_fraction
    );
    // Fleet TBT p99: reused histories stop re-prefilling through the
    // decode cohort's token gaps.
    assert!(
        aff.tbt_p99 < rr.tbt_p99,
        "affinity p99 {} vs round-robin {}",
        aff.tbt_p99,
        rr.tbt_p99
    );
}

#[test]
fn least_outstanding_beats_round_robin_on_interactive_attainment() {
    let rows = grok_rows();
    let row = |name: &str| {
        rows.iter()
            .find(|r| r.router == name)
            .expect("router row exists")
    };
    let rr = row("round-robin");
    let jsq = row("least-outstanding");
    assert!(rr.tiered && jsq.tiered);
    assert!(
        jsq.interactive_attainment > rr.interactive_attainment + 0.02,
        "jsq interactive {} vs round-robin {}",
        jsq.interactive_attainment,
        rr.interactive_attainment
    );
    // The balancer's whole point: it routes by capacity-weighted load
    // instead of counts, so it is *less* even in counts but better in
    // deadlines.
    assert!(jsq.attainment > rr.attainment);
}

#[test]
fn one_replica_cluster_is_exactly_the_scenario_simulation() {
    // Same model, same system, same scenario: a 1-replica cluster must
    // reproduce the plain scenario scheduler bit for bit, router
    // regardless — including through a real SystemExecutor on the
    // delta fast path.
    let model = ModelConfig::mixtral_8x7b();
    let system = SystemConfig::duplex_pe_et(4, 1);
    let scenario = Scenario::new(
        "solo",
        Workload::gaussian(128, 12).with_seed(41),
        Arrivals::Poisson { qps: 400.0 },
        30,
    )
    .with_conversation(ConversationSpec::chat(0.75, 3, 0.01, 32))
    .with_tiers(Scenario::default_tiers(0.004));
    let mk_exec = || SystemExecutor::new(system.clone(), model.clone(), 7);
    let cfg = |ex: &SystemExecutor| SimulationConfig {
        max_batch: 8,
        kv_capacity_bytes: ex.kv_capacity_bytes(),
        kv_bytes_per_token: model.kv_bytes_per_token(),
        ..SimulationConfig::default()
    };

    let mut plain_ex = mk_exec();
    let plain = ScenarioSimulation::new(cfg(&plain_ex), scenario.clone())
        .run(PolicyKind::PriorityTiers.build().as_mut(), &mut plain_ex);

    for kind in RouterKind::ALL {
        let mut ex = mk_exec();
        let configs = vec![ReplicaConfig::new(cfg(&ex))];
        let mut policies: Vec<Box<dyn SchedulingPolicy>> = vec![PolicyKind::PriorityTiers.build()];
        let cluster = ClusterSimulation::new(configs, scenario.clone()).run(
            kind.build().as_mut(),
            &mut policies,
            std::slice::from_mut(&mut ex),
        );
        let r = &cluster.replicas[0];
        assert_eq!(r.stage_stats, plain.stage_stats, "{}", kind.name());
        assert_eq!(r.total_time_s.to_bits(), plain.total_time_s.to_bits());
        assert_eq!(r.completed.len(), plain.completed.len());
        for (a, b) in r.completed.iter().zip(&plain.completed) {
            assert_eq!(a.request, b.request);
            assert_eq!(a.first_token_s.to_bits(), b.first_token_s.to_bits());
            assert_eq!(a.last_token_s.to_bits(), b.last_token_s.to_bits());
        }
        assert_eq!(r.kv_reuse, plain.kv_reuse);
        assert_eq!(cluster.total_time_s.to_bits(), plain.total_time_s.to_bits());
    }
}

#[test]
fn bench_rows_are_reproducible() {
    // The exact numbers the CI gate pins: two sweeps of the quick
    // cluster suite must agree to the bit.
    let a = grok_rows();
    let b = grok_rows();
    assert_eq!(a, b);
}

#[test]
fn parallel_windows_are_byte_identical_to_serial() {
    // The clock-merge invariant, end to end on real SystemExecutors:
    // for every suite fleet under every router, stepping replica
    // windows concurrently must reproduce the serial oracle's report
    // to the bit — same stages, same clocks, same digests.
    for spec in &cluster_suite(&Scale::quick()) {
        for kind in RouterKind::ALL {
            let serial = run_cluster_with(spec, kind.build().as_mut(), ClusterConfig::serial());
            let parallel = run_cluster_with(
                spec,
                kind.build().as_mut(),
                ClusterConfig {
                    parallel: true,
                    threads: 4,
                },
            );
            assert_eq!(
                serial.total_time_s.to_bits(),
                parallel.total_time_s.to_bits(),
                "{} under {}",
                spec.name,
                kind.name()
            );
            assert_eq!(serial, parallel, "{} under {}", spec.name, kind.name());
        }
    }
}

#[test]
fn snapshot_resume_matches_uninterrupted_run_bit_for_bit() {
    // Pause the acceptance fleet mid-run, push the snapshot through
    // its JSON wire format, resume on a freshly built fleet, and
    // demand the final report equals the uninterrupted run's, bit for
    // bit, under every router.
    let suite = cluster_suite(&Scale::quick());
    let spec = suite
        .iter()
        .find(|s| s.name == "grok_chat_tiered")
        .expect("the suite ships the grok fleet");
    for kind in RouterKind::ALL {
        let full = run_cluster(spec, kind.build().as_mut());
        let stop_s = full.total_time_s * 0.4;

        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build();
        let snapshot = sim
            .run_until(router.as_mut(), &mut policies, &mut executors, stop_s)
            .snapshot()
            .expect("the bound lands mid-run");
        assert!(snapshot.replica_count() == spec.systems.len());

        let text = snapshot.to_json();
        let restored = ClusterSnapshot::from_json(&text).expect("the wire format round-trips");
        assert_eq!(restored, snapshot, "JSON round-trip is lossless");

        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build();
        let resumed = sim
            .resume(&restored, router.as_mut(), &mut policies, &mut executors)
            .expect("the snapshot matches the fleet");
        assert_eq!(
            resumed.total_time_s.to_bits(),
            full.total_time_s.to_bits(),
            "router {}",
            kind.name()
        );
        assert_eq!(resumed, full, "router {}", kind.name());
    }
}

#[test]
fn repeated_pause_resume_still_matches() {
    // A run may pause any number of times: chain two bounded resumes
    // before the final unbounded one and compare against the oracle.
    let suite = cluster_suite(&Scale::quick());
    let spec = suite
        .iter()
        .find(|s| s.name == "mixtral_hetero")
        .expect("the suite ships the mixtral fleet");
    let kind = RouterKind::ALL[0];
    let full = run_cluster(spec, kind.build().as_mut());

    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = kind.build();
    let first = sim
        .run_until(
            router.as_mut(),
            &mut policies,
            &mut executors,
            full.total_time_s * 0.25,
        )
        .snapshot()
        .expect("first bound lands mid-run");

    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = kind.build();
    let second = sim
        .resume_until(
            &first,
            router.as_mut(),
            &mut policies,
            &mut executors,
            full.total_time_s * 0.7,
        )
        .expect("the snapshot matches the fleet")
        .snapshot()
        .expect("second bound lands mid-run");
    assert!(second.taken_at_s() > first.taken_at_s());

    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = kind.build();
    let resumed = sim
        .resume(&second, router.as_mut(), &mut policies, &mut executors)
        .expect("the snapshot matches the fleet");
    assert_eq!(resumed, full);
}

fn failover_spec(suite: &[ClusterSpec]) -> &ClusterSpec {
    suite
        .iter()
        .find(|s| s.name == "grok_failover")
        .expect("the suite ships the failure drill")
}

#[test]
fn kv_migration_beats_lose_and_retry_through_the_outage() {
    // The drill's acceptance claim: on the Grok fleet's scripted
    // crash + drain, migration-aware routing must beat plain session
    // affinity (whose displaced conversations re-prefill from scratch)
    // on during-failure interactive SLO attainment AND fleet TBT p99.
    let suite = cluster_suite(&Scale::quick());
    let spec = failover_spec(&suite);
    let run = |kind: RouterKind| {
        let mut router = kind.build();
        let report = run_cluster(spec, router.as_mut());
        ClusterRow::of(spec, kind.name(), &report)
    };
    let aff = run(RouterKind::SessionAffinity);
    let mig = run(RouterKind::KvMigration);
    assert!(
        mig.fault_attainment > aff.fault_attainment,
        "during-failure interactive attainment: migration {} vs affinity {}",
        mig.fault_attainment,
        aff.fault_attainment
    );
    assert!(
        mig.tbt_p99 < aff.tbt_p99,
        "fleet TBT p99: migration {} vs affinity {}",
        mig.tbt_p99,
        aff.tbt_p99
    );
    // The win is bought with the interconnect: the migration-aware
    // router ships strictly more KV than affinity's drain handoff.
    assert!(mig.kv_bytes_migrated > aff.kv_bytes_migrated);
}

#[test]
fn failure_drill_recovery_metrics_are_deterministic_and_populated() {
    // The numbers the CI recovery gate pins: scripted faults fire
    // seed-deterministically, lost requests retry to completion, and
    // both recovery metrics come out non-degenerate — twice, to the
    // bit.
    let suite = cluster_suite(&Scale::quick());
    let spec = failover_spec(&suite);
    for kind in RouterKind::ALL {
        let a = run_cluster(spec, kind.build().as_mut());
        let b = run_cluster(spec, kind.build().as_mut());
        assert_eq!(a, b, "drill reruns bit-identically under {}", kind.name());
        assert_eq!(a.recovery.faults_injected, 2, "{}", kind.name());
        assert!(a.recovery.requests_lost > 0, "{}", kind.name());
        assert_eq!(a.recovery.requests_dropped, 0, "{}", kind.name());
        assert!(a.recovery.kv_bytes_migrated > 0, "{}", kind.name());
        assert!(a.recovery_time_s() > 0.0, "{}", kind.name());
        let fault_slo = a.fault_interactive_attainment();
        assert!(
            fault_slo > 0.0 && fault_slo < 1.0,
            "{}: during-failure attainment {} should show real damage",
            kind.name(),
            fault_slo
        );
    }
}

#[test]
fn mid_outage_snapshot_resumes_bit_for_bit() {
    // Pause the drill *between* the crash and the drain — fault state,
    // retry attempts and recovery counters all mid-flight — round-trip
    // the snapshot through JSON, and demand the resumed report equal
    // the uninterrupted run's under every router.
    let suite = cluster_suite(&Scale::quick());
    let spec = failover_spec(&suite);
    let plan = spec.faults.as_ref().expect("the drill scripts faults");
    let crash_at = plan.faults[0].at_s;
    let drain_at = plan.faults[1].at_s;
    let stop_s = 0.5 * (crash_at + drain_at);
    for kind in RouterKind::ALL {
        let full = run_cluster(spec, kind.build().as_mut());

        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build();
        let snapshot = sim
            .run_until(router.as_mut(), &mut policies, &mut executors, stop_s)
            .snapshot()
            .expect("the bound lands mid-run");
        let restored =
            ClusterSnapshot::from_json(&snapshot.to_json()).expect("the wire format round-trips");
        assert_eq!(restored, snapshot);

        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build();
        let resumed = sim
            .resume(&restored, router.as_mut(), &mut policies, &mut executors)
            .expect("the snapshot matches the fleet");
        assert_eq!(resumed, full, "router {}", kind.name());
    }
}

#[test]
fn a_faultless_fleet_rejects_a_faulted_snapshot() {
    // Snapshot the drill mid-run, then try to resume it on the same
    // fleet built *without* its fault plan: the mismatch must be a
    // described error, not a silent divergence.
    let suite = cluster_suite(&Scale::quick());
    let spec = failover_spec(&suite);
    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = RouterKind::RoundRobin.build();
    let snapshot = sim
        .run_until(
            router.as_mut(),
            &mut policies,
            &mut executors,
            spec.faults.as_ref().unwrap().faults[0].at_s * 0.5,
        )
        .snapshot()
        .expect("the bound lands mid-run");

    let mut calm = spec.clone();
    calm.faults = None;
    let (sim, mut policies, mut executors) = build_cluster(&calm);
    let mut router = RouterKind::RoundRobin.build();
    let err = sim
        .resume(&snapshot, router.as_mut(), &mut policies, &mut executors)
        .expect_err("a faulted snapshot cannot resume on a faultless fleet");
    assert!(err.contains("fault"), "{err}");
}

// ------------------------------------------------------- autoscaling

fn drill_rows() -> Vec<ClusterRow> {
    autoscale_drill(&Scale::quick())
        .iter()
        .map(|spec| {
            let mut router = RouterKind::LeastOutstandingWork.build();
            let report = run_cluster(spec, router.as_mut());
            ClusterRow::of(spec, "least-outstanding", &report)
        })
        .collect()
}

#[test]
fn the_autoscaler_matches_peak_slo_at_a_fraction_of_the_bill() {
    // The PR's acceptance claim, on the diurnal drill: the elastic
    // fleet holds interactive SLO attainment within 0.03 of the
    // statically peak-provisioned fleet while billing at least 25%
    // fewer replica-seconds — and the statically floor-provisioned
    // fleet shows why the pool exists at all.
    let rows = drill_rows();
    let (elastic, stat_min, stat_peak) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(elastic.completed, stat_peak.completed, "same offered load");
    assert_eq!(elastic.completed, stat_min.completed, "same offered load");
    assert!(
        elastic.interactive_attainment >= stat_peak.interactive_attainment - 0.03,
        "elastic interactive attainment {} must stay within 0.03 of the peak fleet's {}",
        elastic.interactive_attainment,
        stat_peak.interactive_attainment
    );
    assert!(
        elastic.replica_seconds <= 0.75 * stat_peak.replica_seconds,
        "elastic bill {} replica-seconds must undercut the peak fleet's {} by >= 25%",
        elastic.replica_seconds,
        stat_peak.replica_seconds
    );
    // The floor fleet is cheaper still but pays for it in deadlines:
    // the diurnal crest buries two replicas.
    assert!(elastic.replica_seconds > stat_min.replica_seconds);
    assert!(
        elastic.interactive_attainment > stat_min.interactive_attainment + 0.3,
        "elastic {} vs floor fleet {}",
        elastic.interactive_attainment,
        stat_min.interactive_attainment
    );
    // The elasticity is real: replicas joined from the pool with a
    // measured provisioning lag and drained back on the down-swing.
    assert!(elastic.scale_ups >= 2, "{}", elastic.scale_ups);
    assert!(elastic.scale_downs >= 1, "{}", elastic.scale_downs);
    assert!(elastic.scale_up_lag_s > 0.0);
    assert_eq!(stat_peak.scale_ups + stat_min.scale_ups, 0);
}

#[test]
fn the_autoscaled_drill_is_byte_identical_serial_and_parallel() {
    // The clock-merge invariant survives elastic scaling on real
    // SystemExecutors: scale decisions happen at merge points, so the
    // parallel path must reproduce the serial oracle to the bit.
    let drill = autoscale_drill(&Scale::quick());
    let spec = &drill[0];
    let serial = run_cluster_with(spec, RouterKind::LeastOutstandingWork.build().as_mut(), {
        ClusterConfig::serial()
    });
    let parallel = run_cluster_with(
        spec,
        RouterKind::LeastOutstandingWork.build().as_mut(),
        ClusterConfig {
            parallel: true,
            threads: 4,
        },
    );
    assert!(serial.scaling.scale_ups > 0, "the drill actually scales");
    assert_eq!(
        serial.total_time_s.to_bits(),
        parallel.total_time_s.to_bits()
    );
    assert_eq!(serial, parallel);
}

#[test]
fn a_mid_scale_snapshot_of_the_drill_resumes_bit_for_bit() {
    // Pause the elastic drill mid-run — pool membership, hysteresis
    // streaks and any in-flight scale events all live state — push the
    // snapshot through JSON, resume on a freshly built fleet, and
    // demand the uninterrupted report.
    let drill = autoscale_drill(&Scale::quick());
    let spec = &drill[0];
    let kind = RouterKind::LeastOutstandingWork;
    let full = run_cluster(spec, kind.build().as_mut());
    assert!(full.scaling.scale_ups > 0, "the drill actually scales");
    for frac in [0.2, 0.45, 0.7] {
        let stop_s = frac * full.total_time_s;
        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build();
        let snapshot = sim
            .run_until(router.as_mut(), &mut policies, &mut executors, stop_s)
            .snapshot()
            .expect("the bound lands mid-run");
        let restored =
            ClusterSnapshot::from_json(&snapshot.to_json()).expect("the wire format round-trips");
        assert_eq!(restored, snapshot, "JSON round-trip is lossless");

        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build();
        let resumed = sim
            .resume(&restored, router.as_mut(), &mut policies, &mut executors)
            .expect("the snapshot matches the fleet");
        assert_eq!(resumed, full, "paused at {frac} of the run");
    }
}

#[test]
fn a_static_fleet_rejects_an_autoscaled_snapshot() {
    // Same shape as the fault-plan mismatch: an elastic snapshot must
    // not silently resume on a fleet built without the policy.
    let drill = autoscale_drill(&Scale::quick());
    let spec = &drill[0];
    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = RouterKind::RoundRobin.build();
    let full = run_cluster(spec, RouterKind::RoundRobin.build().as_mut());
    let snapshot = sim
        .run_until(
            router.as_mut(),
            &mut policies,
            &mut executors,
            0.3 * full.total_time_s,
        )
        .snapshot()
        .expect("the bound lands mid-run");

    let mut rigid = spec.clone();
    rigid.autoscale = None;
    let (sim, mut policies, mut executors) = build_cluster(&rigid);
    let mut router = RouterKind::RoundRobin.build();
    let err = sim
        .resume(&snapshot, router.as_mut(), &mut policies, &mut executors)
        .expect_err("an autoscaled snapshot cannot resume on a static fleet");
    assert!(err.contains("autoscale"), "{err}");
}

// --------------------------------------------- disaggregated serving

fn disagg_rows() -> (Vec<ClusterRow>, Vec<duplex::sched::DisaggStats>) {
    let drill = grok_disagg(&Scale::quick());
    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for spec in &drill {
        let mut router = RouterKind::LeastOutstandingWork.build_with(&spec.router_context());
        let report = run_cluster(spec, router.as_mut());
        rows.push(ClusterRow::of(spec, "least-outstanding", &report));
        stats.push(report.disagg);
    }
    (rows, stats)
}

#[test]
fn disagg_beats_chunked_colocation_on_tail_latency() {
    // The PR's acceptance claim, on the long-prefill Grok drill: the
    // prefill/decode pool split beats adaptive-chunked colocation on
    // mixed-stage TBT p99 while holding at least 90% of its generation
    // throughput — decode stages never co-batch a prompt, so the tail
    // stops paying for prefill stalls.
    let (rows, stats) = disagg_rows();
    let (colo, chunked, disagg) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(colo.completed, disagg.completed, "same offered load");
    assert_eq!(chunked.completed, disagg.completed, "same offered load");
    assert!(
        disagg.tbt_p99 < chunked.tbt_p99,
        "disagg TBT p99 {} must beat the chunked incumbent's {}",
        disagg.tbt_p99,
        chunked.tbt_p99
    );
    assert!(
        disagg.throughput >= 0.9 * chunked.throughput,
        "disagg throughput {} must hold >= 90% of chunked's {}",
        disagg.throughput,
        chunked.throughput
    );
    // Chunking already mitigates what disaggregation removes.
    assert!(chunked.tbt_p99 < colo.tbt_p99);
    // The split is real: every prompt crossed the interconnect, and
    // only the split fleet shipped anything.
    let d = &stats[2];
    assert_eq!(d.handoffs as usize, disagg.completed);
    assert!(d.kv_bytes_shipped > 0);
    assert!(d.transfer_seconds > 0.0);
    assert_eq!(stats[0], duplex::sched::DisaggStats::default());
    assert_eq!(stats[1], duplex::sched::DisaggStats::default());
}

#[test]
fn the_disagg_drill_is_byte_identical_serial_and_parallel() {
    // The clock-merge invariant survives pool-split serving on real
    // SystemExecutors: handoffs buffer inside windows and deliver at
    // merge points, so the parallel path must reproduce the serial
    // oracle to the bit.
    let drill = grok_disagg(&Scale::quick());
    let spec = &drill[2];
    let ctx = spec.router_context();
    let serial = run_cluster_with(
        spec,
        RouterKind::LeastOutstandingWork.build_with(&ctx).as_mut(),
        ClusterConfig::serial(),
    );
    let parallel = run_cluster_with(
        spec,
        RouterKind::LeastOutstandingWork.build_with(&ctx).as_mut(),
        ClusterConfig {
            parallel: true,
            threads: 4,
        },
    );
    assert!(serial.disagg.handoffs > 0, "the drill actually hands off");
    assert_eq!(
        serial.total_time_s.to_bits(),
        parallel.total_time_s.to_bits()
    );
    assert_eq!(serial, parallel);
}

#[test]
fn a_mid_transfer_snapshot_of_the_disagg_drill_resumes_bit_for_bit() {
    // Pause the split fleet mid-run — admission-time decode
    // assignments in flight, prompts half-prefilled on the prefill
    // pool — push the snapshot through JSON, resume on a freshly built
    // fleet, and demand the uninterrupted report.
    let drill = grok_disagg(&Scale::quick());
    let spec = &drill[2];
    let ctx = spec.router_context();
    let kind = RouterKind::LeastOutstandingWork;
    let full = run_cluster(spec, kind.build_with(&ctx).as_mut());
    assert!(full.disagg.handoffs > 0, "the drill actually hands off");
    let mut saw_assignments = false;
    for frac in [0.2, 0.45, 0.7] {
        let stop_s = frac * full.total_time_s;
        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build_with(&ctx);
        let snapshot = sim
            .run_until(router.as_mut(), &mut policies, &mut executors, stop_s)
            .snapshot()
            .expect("the bound lands mid-run");
        let restored =
            ClusterSnapshot::from_json(&snapshot.to_json()).expect("the wire format round-trips");
        assert_eq!(restored, snapshot, "JSON round-trip is lossless");
        saw_assignments |= snapshot.to_json().contains("\"assignments\":[[");

        let (sim, mut policies, mut executors) = build_cluster(spec);
        let mut router = kind.build_with(&ctx);
        let resumed = sim
            .resume(&restored, router.as_mut(), &mut policies, &mut executors)
            .expect("the snapshot matches the fleet");
        assert_eq!(resumed, full, "paused at {frac} of the run");
    }
    assert!(
        saw_assignments,
        "at least one pause caught a transfer in flight"
    );
}

#[test]
fn a_colocated_fleet_rejects_a_disaggregated_snapshot() {
    // Same shape as the fault-plan and autoscale mismatches: a pool
    // split snapshot must not silently resume on a colocated fleet.
    let drill = grok_disagg(&Scale::quick());
    let spec = &drill[2];
    let (sim, mut policies, mut executors) = build_cluster(spec);
    let mut router = RouterKind::RoundRobin.build();
    let full = run_cluster(spec, RouterKind::RoundRobin.build().as_mut());
    let snapshot = sim
        .run_until(
            router.as_mut(),
            &mut policies,
            &mut executors,
            0.3 * full.total_time_s,
        )
        .snapshot()
        .expect("the bound lands mid-run");

    let mut colocated = spec.clone();
    colocated.disagg = None;
    let (sim, mut policies, mut executors) = build_cluster(&colocated);
    let mut router = RouterKind::RoundRobin.build();
    let err = sim
        .resume(&snapshot, router.as_mut(), &mut policies, &mut executors)
        .expect_err("a disaggregated snapshot cannot resume on a colocated fleet");
    assert!(err.contains("disagg"), "{err}");
}
