//! Scheduler behavior against the real execution engine: token
//! conservation, stage typing, queueing under Poisson load.

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

#[test]
fn token_conservation_across_a_real_run() {
    let model = ModelConfig::mixtral_8x7b();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::duplex_pe(4, 1),
        Workload::gaussian(256, 32).with_seed(5),
        8,
        24,
    );
    let r = run(cfg);
    let completed_tokens: u64 = r.report.completed.iter().map(|c| c.token_times.len() as u64).sum();
    assert_eq!(completed_tokens, r.report.generated_tokens());
    let expected: u64 = r.report.completed.iter().map(|c| c.request.output_len).sum();
    assert_eq!(completed_tokens, expected);
}

#[test]
fn one_mixed_stage_per_admission_wave() {
    let model = ModelConfig::mixtral_8x7b();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::gpu(4, 1),
        Workload::fixed(128, 16),
        4,
        12,
    );
    let r = run(cfg);
    // 12 requests in waves of 4: three admission waves.
    let mixed = r.report.stages.iter().filter(|s| s.mixed).count();
    assert_eq!(mixed, 3);
}

#[test]
fn token_times_are_monotone() {
    let model = ModelConfig::glam();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::duplex_pe_et(8, 1),
        Workload::gaussian(128, 24).with_seed(3),
        8,
        16,
    );
    let r = run(cfg);
    for rec in &r.report.completed {
        for w in rec.token_times.windows(2) {
            assert!(w[1] > w[0], "token times must increase");
        }
        assert!(rec.token_times[0] > rec.request.arrival_s);
    }
}

#[test]
fn overload_grows_t2ft_not_tbt() {
    let model = ModelConfig::mixtral_8x7b();
    let mk = |qps: f64| {
        let mut cfg = RunConfig::closed_loop(
            model.clone(),
            SystemConfig::gpu(4, 1),
            Workload::fixed(512, 64),
            8,
            32,
        );
        cfg.qps = Some(qps);
        run(cfg)
    };
    let light = mk(1.0);
    let heavy = mk(500.0);
    // Queueing inflates time-to-first-token dramatically...
    assert!(heavy.t2ft.p50 > 3.0 * light.t2ft.p50);
    // ...but decode cadence stays within the batching slowdown.
    assert!(heavy.tbt.p50 < 4.0 * light.tbt.p50);
}

#[test]
fn bigger_batches_raise_throughput_and_tbt() {
    let model = ModelConfig::mixtral_8x7b();
    let mk = |batch: usize| {
        run(RunConfig::closed_loop(
            model.clone(),
            SystemConfig::gpu(4, 1),
            Workload::fixed(256, 32),
            batch,
            batch * 2,
        ))
    };
    let small = mk(8);
    let large = mk(32);
    assert!(large.throughput_tokens_per_s > 1.5 * small.throughput_tokens_per_s);
    assert!(large.tbt.p50 > small.tbt.p50, "batching costs per-token latency");
}
