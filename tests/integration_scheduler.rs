//! Scheduler behavior against the real execution engine: token
//! conservation, stage typing, queueing under Poisson load.

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

#[test]
fn token_conservation_across_a_real_run() {
    let model = ModelConfig::mixtral_8x7b();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::duplex_pe(4, 1),
        Workload::gaussian(256, 32).with_seed(5),
        8,
        24,
    );
    let r = run(cfg);
    let completed_tokens: u64 = r.report.completed.iter().map(|c| c.tokens).sum();
    assert_eq!(completed_tokens, r.report.generated_tokens());
    let expected: u64 = r
        .report
        .completed
        .iter()
        .map(|c| c.request.output_len)
        .sum();
    assert_eq!(completed_tokens, expected);
}

#[test]
fn one_mixed_stage_per_admission_wave() {
    let model = ModelConfig::mixtral_8x7b();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::gpu(4, 1),
        Workload::fixed(128, 16),
        4,
        12,
    );
    let r = run(cfg);
    // 12 requests in waves of 4: three admission waves.
    let mixed = r.report.stages.iter().filter(|s| s.mixed).count();
    assert_eq!(mixed, 3);
}

#[test]
fn token_timestamps_are_ordered() {
    let model = ModelConfig::glam();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::duplex_pe_et(8, 1),
        Workload::gaussian(128, 24).with_seed(3),
        8,
        16,
    );
    let r = run(cfg);
    for rec in &r.report.completed {
        assert!(rec.first_token_s > rec.request.arrival_s);
        if rec.tokens > 1 {
            assert!(rec.last_token_s > rec.first_token_s);
            assert!(rec.mean_tbt() > 0.0);
        } else {
            assert_eq!(rec.last_token_s, rec.first_token_s);
        }
    }
    // All token gaps are real stage latencies: strictly positive.
    assert!(r.tbt.p50 > 0.0);
}

#[test]
fn poisson_arrivals_gate_admission() {
    // No request may see its first token before it arrived, and with
    // sparse arrivals the scheduler must idle-jump between them.
    let model = ModelConfig::mixtral_8x7b();
    let mut cfg = RunConfig::closed_loop(
        model,
        SystemConfig::gpu(4, 1),
        Workload::fixed(64, 4).with_seed(17),
        8,
        12,
    );
    cfg.qps = Some(0.5); // ~2 s apart; service is milliseconds
    let r = run(cfg);
    assert_eq!(r.report.completed.len(), 12);
    for rec in &r.report.completed {
        assert!(
            rec.first_token_s > rec.request.arrival_s,
            "token before arrival: {rec:?}"
        );
    }
    // Light load: requests mostly run alone, so stages outnumber what a
    // saturated batch would need and the mean batch stays near 1.
    assert!(r.mean_batch < 2.0, "mean batch {}", r.mean_batch);
    assert!(
        r.report.total_time_s > 10.0,
        "clock must span the arrival horizon"
    );
}

#[test]
fn kv_exhaustion_throttles_admission_mid_run() {
    // Budget for ~3 requests' full contexts: the scheduler must cap the
    // concurrent batch below max_batch, complete everything, and keep
    // the incremental reservation consistent (debug assert audits it).
    let model = ModelConfig::mixtral_8x7b();
    let kv_per_token = model.kv_bytes_per_token();
    let mut cfg = RunConfig::closed_loop(
        model,
        SystemConfig::gpu(4, 1),
        Workload::fixed(256, 16),
        8,
        10,
    );
    cfg.kv_capacity_override = Some(3 * (256 + 16) * kv_per_token);
    let r = run(cfg);
    assert_eq!(r.report.completed.len(), 10);
    assert!(
        r.report.stages.iter().all(|s| s.batch <= 3),
        "KV budget must cap the batch at 3"
    );
    assert!(
        r.report.stages.iter().any(|s| s.batch == 3),
        "budget is reachable"
    );
}

#[test]
fn stage_cap_truncates_real_runs() {
    let model = ModelConfig::mixtral_8x7b();
    let mut cfg = RunConfig::closed_loop(
        model,
        SystemConfig::duplex_pe(4, 1),
        Workload::fixed(128, 1000),
        4,
        8,
    );
    cfg.max_stages = 37;
    let r = run(cfg);
    assert_eq!(r.report.stages.len(), 37);
    assert_eq!(r.report.stage_stats.stages, 37);
    assert!(
        r.report.completed.is_empty(),
        "no request can finish in 37 stages"
    );
    // Truncated steady-state throughput still counts in-flight tokens.
    assert!(r.report.generated_tokens() > 0);
    assert!(r.throughput_tokens_per_s > 0.0);
}

#[test]
fn overload_grows_t2ft_not_tbt() {
    let model = ModelConfig::mixtral_8x7b();
    let mk = |qps: f64| {
        let mut cfg = RunConfig::closed_loop(
            model.clone(),
            SystemConfig::gpu(4, 1),
            Workload::fixed(512, 64),
            8,
            32,
        );
        cfg.qps = Some(qps);
        run(cfg)
    };
    let light = mk(1.0);
    let heavy = mk(500.0);
    // Queueing inflates time-to-first-token dramatically...
    assert!(heavy.t2ft.p50 > 3.0 * light.t2ft.p50);
    // ...but decode cadence stays within the batching slowdown.
    assert!(heavy.tbt.p50 < 4.0 * light.tbt.p50);
}

#[test]
fn bigger_batches_raise_throughput_and_tbt() {
    let model = ModelConfig::mixtral_8x7b();
    let mk = |batch: usize| {
        run(RunConfig::closed_loop(
            model.clone(),
            SystemConfig::gpu(4, 1),
            Workload::fixed(256, 32),
            batch,
            batch * 2,
        ))
    };
    let small = mk(8);
    let large = mk(32);
    assert!(large.throughput_tokens_per_s > 1.5 * small.throughput_tokens_per_s);
    assert!(
        large.tbt.p50 > small.tbt.p50,
        "batching costs per-token latency"
    );
}
