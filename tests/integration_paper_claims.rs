//! The paper's qualitative claims, checked end to end at quick scale.
//! Each test cites the section/figure it pins down.

use duplex::experiments::{fig04_breakdown, fig05_hetero_latency, fig08_edap, fig16_split, Scale};
use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

/// Sec. III-B / Fig. 5(a): decoding-only stages dominate.
#[test]
fn decoding_only_stages_dominate() {
    let model = ModelConfig::mixtral_8x7b();
    let cfg = RunConfig::closed_loop(
        model,
        SystemConfig::gpu(4, 1),
        Workload::gaussian(256, 128),
        16,
        32,
    );
    let r = run(cfg);
    assert!(
        r.report.decode_only_fraction() > 0.8,
        "got {}",
        r.report.decode_only_fraction()
    );
}

/// Fig. 4(a): MoE + attention dominate GPU stage time.
#[test]
fn moe_and_attention_dominate_gpu_time() {
    let rows = fig04_breakdown(&Scale::quick());
    for r in rows.iter().filter(|r| !r.mixed && r.batch >= 64) {
        let dominant = r.fractions[2] + r.fractions[3];
        assert!(dominant > 0.5, "{r:?}");
    }
}

/// Fig. 5(b): the hetero system improves p50 TBT but blows up the tail
/// (p99 TBT, T2FT) once prompts get long.
#[test]
fn hetero_tail_latency_blows_up() {
    let rows = fig05_hetero_latency(&Scale::quick());
    // Find the long-prompt configuration (Lin = 2048 pre-shrink).
    let long: Vec<_> = rows.iter().filter(|r| r.lin == 2048).collect();
    let gpu = long.iter().find(|r| r.system == "GPU").expect("GPU row");
    let het = long
        .iter()
        .find(|r| r.system == "Hetero")
        .expect("Hetero row");
    assert!(het.tbt[0] < gpu.tbt[0], "hetero wins median TBT");
    assert!(
        het.tbt[2] > 1.5 * gpu.tbt[2],
        "hetero p99 TBT must blow up: {} vs {}",
        het.tbt[2],
        gpu.tbt[2]
    );
    assert!(
        het.t2ft_p50 > 1.5 * gpu.t2ft_p50,
        "hetero T2FT must blow up"
    );
}

/// Fig. 8: Bank-PIM best at Op/B 1, Logic-PIM best at Op/B 32,
/// BankGroup-PIM never best.
#[test]
fn edap_crossover_matches_figure() {
    let rows = fig08_edap();
    let best_at = |op_b: u64| {
        rows.iter()
            .filter(|r| r.op_b == op_b)
            .min_by(|a, b| a.edap.partial_cmp(&b.edap).expect("finite"))
            .expect("rows exist")
            .arch
    };
    assert_eq!(best_at(1), "Bank-PIM");
    assert_eq!(best_at(32), "Logic-PIM");
    for op_b in [1u64, 2, 4, 8, 16, 32] {
        assert_ne!(best_at(op_b), "BankGroup-PIM");
    }
}

/// Sec. VII-C / Fig. 14: Bank-PIM out-serves Duplex on MHA-only OPT
/// (decode attention at Op/B ~1), Duplex wins on Mixtral.
#[test]
fn bank_pim_vs_duplex_by_model_class() {
    let opt = ModelConfig::opt_66b();
    let mk = |model: &ModelConfig, system| {
        RunConfig::closed_loop(model.clone(), system, Workload::gaussian(512, 64), 32, 40)
    };
    let bank = run(mk(&opt, SystemConfig::bank_pim(4, 1)));
    let dup = run(mk(&opt, SystemConfig::duplex(4, 1)));
    assert!(
        bank.throughput_tokens_per_s > dup.throughput_tokens_per_s,
        "OPT: bank {} vs duplex {}",
        bank.throughput_tokens_per_s,
        dup.throughput_tokens_per_s
    );

    let mixtral = ModelConfig::mixtral_8x7b();
    let bank = run(mk(&mixtral, SystemConfig::bank_pim(4, 1)));
    let dup = run(mk(&mixtral, SystemConfig::duplex_pe_et(4, 1)));
    assert!(
        dup.throughput_tokens_per_s > bank.throughput_tokens_per_s,
        "Mixtral: duplex {} vs bank {}",
        dup.throughput_tokens_per_s,
        bank.throughput_tokens_per_s
    );
}

/// Sec. VIII-A / Fig. 16: the split system trades throughput for clean
/// TBT tails.
#[test]
fn split_system_trade_off() {
    let rows = fig16_split(&Scale::quick());
    for pair in rows.chunks(2) {
        let (dup, split) = (&pair[0], &pair[1]);
        assert_eq!(split.system, "Duplex-Split");
        assert!(
            split.throughput < dup.throughput,
            "split must lose throughput: {} vs {}",
            split.throughput,
            dup.throughput
        );
        // Decode pool never sees prefills: tail close to median.
        assert!(split.tbt[2] < 2.5 * split.tbt[0]);
    }
}

/// Sec. VII-A: co-processing (+PE) and expert tensor parallelism (+ET)
/// never hurt and help in aggregate.
#[test]
fn pe_and_et_are_monotone_improvements() {
    let model = ModelConfig::mixtral_8x7b();
    let mk = |system| {
        run(RunConfig::closed_loop(
            model.clone(),
            system,
            Workload::gaussian(1024, 64),
            32,
            40,
        ))
    };
    let base = mk(SystemConfig::duplex(4, 1));
    let pe = mk(SystemConfig::duplex_pe(4, 1));
    let et = mk(SystemConfig::duplex_pe_et(4, 1));
    assert!(pe.throughput_tokens_per_s >= 0.98 * base.throughput_tokens_per_s);
    assert!(et.throughput_tokens_per_s >= 0.98 * pe.throughput_tokens_per_s);
    assert!(et.throughput_tokens_per_s > 1.05 * base.throughput_tokens_per_s);
}

/// Abstract: up to ~2.67x throughput over the GPU baseline; we require
/// at least 1.5x at a favorable configuration and no regression
/// anywhere.
#[test]
fn headline_speedup_band() {
    let model = ModelConfig::mixtral_8x7b();
    let mk = |system| {
        run(RunConfig::closed_loop(
            model.clone(),
            system,
            Workload::gaussian(512, 512),
            32,
            40,
        ))
    };
    let gpu = mk(SystemConfig::gpu(4, 1));
    let dup = mk(SystemConfig::duplex_pe_et(4, 1));
    let speedup = dup.throughput_tokens_per_s / gpu.throughput_tokens_per_s;
    assert!(speedup > 1.5 && speedup < 4.0, "speedup {speedup}");
}
