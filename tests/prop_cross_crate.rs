//! Cross-crate property tests: invariants of the full pipeline under
//! randomized stage shapes, workloads and splits.

use duplex::compute::kernel::GemmShape;
use duplex::compute::Engine;
use duplex::model::ops::StageShape;
use duplex::model::{ExpertRouter, ModelConfig};
use duplex::sched::{
    Arrivals, AutoscalePolicy, ClusterConfig, ClusterSimulation, ClusterSnapshot, ConversationSpec,
    DisaggPlan, FaultEvent, FaultKind, FaultPlan, KvLinkSpec, LatencyDigest, MultiplexSpec,
    PendingRequest, Placement, PolicyKind, PoolRole, PreemptMode, PreemptSpec, PreemptionPolicy,
    PriorityTiers, ReplicaConfig, ReplicaSnapshot, Request, RetryPolicy, RouterKind, Scenario,
    ScenarioSimulation, SchedulingPolicy, Simulation, SimulationConfig, SloStats, StageExecutor,
    StageOutcome, TierStats, Workload,
};
use duplex::system::coproc::split_experts;
use duplex::system::{SystemConfig, SystemExecutor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative difference, safe around zero.
fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Executor that prices every stage through the per-request reference
/// path, ignoring deltas — the oracle for the incremental executor.
/// (`stage_cost_reference` is a pure query, so the wrapper accumulates
/// energy itself.)
struct ReferenceExec {
    ex: SystemExecutor,
    energy_j: f64,
}

impl ReferenceExec {
    fn new(ex: SystemExecutor) -> Self {
        Self { ex, energy_j: 0.0 }
    }
}

impl StageExecutor for ReferenceExec {
    fn execute(&mut self, shape: &StageShape) -> StageOutcome {
        let cost = self.ex.stage_cost_reference(shape);
        self.energy_j += cost.energy.total();
        StageOutcome {
            seconds: cost.seconds,
        }
    }
}

/// Constant-latency executor for fault-drill properties, where the
/// interesting state lives in the scheduler, not the pricing.
#[derive(Clone, Copy)]
struct FixedStage(f64);

impl StageExecutor for FixedStage {
    fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
        StageOutcome { seconds: self.0 }
    }
}

/// Linear per-token executor for the disaggregation oracle: every
/// stage costs the same dyadic constant per token processed, so total
/// priced seconds depend only on the token population, never on how
/// stages batch it or which replica runs it. It accumulates its own
/// charge so fleets can be compared by summing executors.
struct TokenLinear {
    per_token: f64,
    total_s: f64,
}

impl TokenLinear {
    fn fleet(n: usize) -> Vec<Self> {
        (0..n)
            .map(|_| Self {
                // A power of two: integer token counts price exactly,
                // so cross-fleet totals compare without rounding slop.
                per_token: 1.0 / 512.0,
                total_s: 0.0,
            })
            .collect()
    }
}

impl StageExecutor for TokenLinear {
    fn execute(&mut self, shape: &StageShape) -> StageOutcome {
        let tokens = shape.decode_ctx.len() as u64 + shape.prefill_len.iter().sum::<u64>();
        let seconds = self.per_token * tokens as f64;
        self.total_s += seconds;
        StageOutcome { seconds }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The grouped fast path (grouped attention ops + expected-value
    /// routing + memoized kernel pricing + per-layer MoE collapse) is
    /// cost-equivalent to the per-request reference path on every
    /// system preset, for arbitrary stage shapes: same seconds, same
    /// per-class breakdown, same energy, within 1e-9 relative.
    #[test]
    fn grouped_fast_path_equals_reference(
        decode_ctx in proptest::collection::vec(16u64..3000, 1..20),
        prefill_len in proptest::collection::vec(64u64..1500, 0..3),
        dup_ctx in proptest::option::of(16u64..3000),
        seed in 0u64..1000,
    ) {
        // Duplicate one context several times so grouping has work to do.
        let mut decode_ctx = decode_ctx;
        if let Some(c) = dup_ctx {
            for _ in 0..4 {
                decode_ctx.push(c);
            }
        }
        let shape = StageShape::mixed(&decode_ctx, &prefill_len);
        let model = ModelConfig::mixtral_8x7b();
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex(4, 1),
            SystemConfig::duplex_pe(4, 1),
            SystemConfig::duplex_pe_et(4, 1),
            SystemConfig::bank_pim(4, 1),
            SystemConfig::hetero(),
        ] {
            let name = system.name.clone();
            let mut fast = SystemExecutor::new(system.clone(), model.clone(), seed);
            let mut naive = SystemExecutor::new(system, model.clone(), seed);
            let a = fast.stage_cost(&shape);
            let b = naive.stage_cost_reference(&shape);
            prop_assert!(rel_diff(a.seconds, b.seconds) < 1e-9, "{name}: seconds");
            prop_assert!(rel_diff(a.time.fc, b.time.fc) < 1e-9, "{name}: fc");
            prop_assert!(
                rel_diff(a.time.attn_prefill, b.time.attn_prefill) < 1e-9,
                "{name}: attn_prefill"
            );
            prop_assert!(
                rel_diff(a.time.attn_decode, b.time.attn_decode) < 1e-9,
                "{name}: attn_decode"
            );
            prop_assert!(rel_diff(a.time.moe, b.time.moe) < 1e-9, "{name}: moe");
            prop_assert!(rel_diff(a.time.comm, b.time.comm) < 1e-9, "{name}: comm");
            prop_assert!(rel_diff(a.energy.total(), b.energy.total()) < 1e-9, "{name}: energy");
        }
    }

    /// Same equivalence on a two-node cluster (data-parallel round-robin
    /// placement of grouped multiplicities) with the Grok1 model.
    #[test]
    fn grouped_fast_path_equals_reference_two_nodes(
        decode_ctx in proptest::collection::vec(64u64..2000, 1..16),
        seed in 0u64..100,
    ) {
        let shape = StageShape::decode_only(&decode_ctx);
        let model = ModelConfig::grok1();
        let mut fast =
            SystemExecutor::new(SystemConfig::duplex_pe_et(8, 2), model.clone(), seed);
        let mut naive = SystemExecutor::new(SystemConfig::duplex_pe_et(8, 2), model, seed);
        let a = fast.stage_cost(&shape);
        let b = naive.stage_cost_reference(&shape);
        prop_assert!(rel_diff(a.seconds, b.seconds) < 1e-9, "seconds");
        prop_assert!(rel_diff(a.energy.total(), b.energy.total()) < 1e-9, "energy");
    }

    /// The incremental delta path equals the per-request reference path
    /// over full randomized serving traces: the scheduler emits
    /// admissions, retirements and pure advances from a Gaussian
    /// workload (optionally under Poisson arrivals), and every stage's
    /// latency — hence the whole simulated timeline — must match within
    /// 1e-9 relative.
    #[test]
    fn incremental_trace_equals_reference(
        mean_in in 32u64..512,
        mean_out in 4u64..32,
        requests in 4usize..20,
        batch in 1usize..12,
        seed in 0u64..1000,
        qps in proptest::option::of(1.0f64..50.0),
        duplex_system in 0u8..2,
    ) {
        let model = ModelConfig::mixtral_8x7b();
        let system = if duplex_system == 1 {
            SystemConfig::duplex_pe_et(4, 1)
        } else {
            SystemConfig::gpu(4, 1)
        };
        let mut inc = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut oracle = ReferenceExec::new(SystemExecutor::new(system, model.clone(), 1));
        let cfg = SimulationConfig {
            max_batch: batch,
            kv_capacity_bytes: inc.kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..SimulationConfig::default()
        };
        let workload = Workload::gaussian(mean_in, mean_out).with_seed(seed);
        let mk = |w: Workload| match qps {
            Some(q) => Simulation::poisson(cfg, w, q, requests),
            None => Simulation::closed_loop(cfg, w, requests),
        };
        let a = mk(workload.clone()).run(&mut inc);
        let b = mk(workload).run(&mut oracle);
        prop_assert_eq!(a.stages.len(), b.stages.len());
        for (i, (sa, sb)) in a.stages.iter().zip(&b.stages).enumerate() {
            prop_assert_eq!(sa.batch, sb.batch);
            prop_assert!(
                rel_diff(sa.seconds, sb.seconds) < 1e-9,
                "stage {}: incremental {} vs reference {}",
                i, sa.seconds, sb.seconds
            );
        }
        prop_assert!(rel_diff(a.total_time_s, b.total_time_s) < 1e-9, "total time");
        prop_assert!(
            rel_diff(inc.total_cost().energy.total(), oracle.energy_j) < 1e-9,
            "energy"
        );
    }

    /// The delta path stays pinned to the reference oracle over
    /// *scenario* traces too: bursty on/off arrivals, policy-driven
    /// admission, SLO tiers, multi-turn conversations whose reuse
    /// admissions prefill a suffix but cross-attend their resident
    /// history (prefill-with-past via `StageDelta::admit_ctx`), and
    /// chunked prefill splitting long prompts into held
    /// prefill-with-past slices (`StageDelta::chunk`). Every stage
    /// latency and the whole timeline must match within 1e-9 relative.
    #[test]
    fn scenario_trace_equals_reference(
        mean_in in 32u64..256,
        mean_out in 4u64..24,
        requests in 4usize..14,
        batch in 1usize..10,
        seed in 0u64..1000,
        burst_qps in 20.0f64..2000.0,
        multi_turn_bit in 0u8..2,
        chunk in proptest::option::of(8u64..64),
        policy_idx in 0usize..4,
    ) {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let mut inc = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut oracle = ReferenceExec::new(SystemExecutor::new(system, model.clone(), 1));
        let cfg = SimulationConfig {
            max_batch: batch,
            kv_capacity_bytes: inc.kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..SimulationConfig::default()
        };
        let workload = Workload::gaussian(mean_in, mean_out).with_seed(seed);
        let arrivals = Arrivals::Bursty {
            base_qps: 0.0,
            burst_qps,
            mean_off_s: 0.5,
            mean_on_s: 0.2,
        };
        let multi_turn = multi_turn_bit == 1;
        let mk = || {
            let mut s = Scenario::new("prop", workload.clone(), arrivals.clone(), requests)
                .with_tiers(Scenario::default_tiers(0.01))
                .with_prefill_chunk(chunk.unwrap_or(0));
            if multi_turn {
                s = s.with_conversation(ConversationSpec::chat(0.7, 3, 0.05, 16));
            }
            s
        };
        let kind = PolicyKind::ALL[policy_idx];
        let a = ScenarioSimulation::new(cfg, mk()).run(kind.build().as_mut(), &mut inc);
        let b = ScenarioSimulation::new(cfg, mk()).run(kind.build().as_mut(), &mut oracle);
        prop_assert_eq!(a.stages.len(), b.stages.len());
        for (i, (sa, sb)) in a.stages.iter().zip(&b.stages).enumerate() {
            prop_assert_eq!(sa.batch, sb.batch);
            prop_assert!(
                rel_diff(sa.seconds, sb.seconds) < 1e-9,
                "stage {}: incremental {} vs reference {}",
                i, sa.seconds, sb.seconds
            );
        }
        prop_assert!(rel_diff(a.total_time_s, b.total_time_s) < 1e-9, "total time");
        prop_assert!(
            rel_diff(inc.total_cost().energy.total(), oracle.energy_j) < 1e-9,
            "energy"
        );
        prop_assert_eq!(a.completed.len(), b.completed.len());
        prop_assert_eq!(a.kv_reuse, b.kv_reuse);
        if multi_turn {
            prop_assert!(a.completed.len() >= requests);
        }
    }

    /// A one-replica cluster is the plain scenario scheduler, bit for
    /// bit: same stage stream, same timeline, same completions — for
    /// every shipped router, over randomized scenarios (conversations,
    /// tiers, chunking) on a real `SystemExecutor`.
    #[test]
    fn one_replica_cluster_equals_scenario_simulation(
        mean_in in 32u64..256,
        mean_out in 4u64..24,
        requests in 4usize..14,
        batch in 1usize..10,
        seed in 0u64..1000,
        qps in 20.0f64..2000.0,
        multi_turn_bit in 0u8..2,
        chunk in proptest::option::of(8u64..64),
        policy_idx in 0usize..4,
        router_idx in 0usize..RouterKind::ALL.len(),
    ) {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let mut plain_ex = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut cluster_ex = SystemExecutor::new(system, model.clone(), 1);
        let cfg = SimulationConfig {
            max_batch: batch,
            kv_capacity_bytes: plain_ex.kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..SimulationConfig::default()
        };
        let mk = || {
            let mut s = Scenario::new(
                "prop",
                Workload::gaussian(mean_in, mean_out).with_seed(seed),
                Arrivals::Poisson { qps },
                requests,
            )
            .with_tiers(Scenario::default_tiers(0.01))
            .with_prefill_chunk(chunk.unwrap_or(0));
            if multi_turn_bit == 1 {
                s = s.with_conversation(ConversationSpec::chat(0.7, 3, 0.05, 16));
            }
            s
        };
        let kind = PolicyKind::ALL[policy_idx];
        let plain = ScenarioSimulation::new(cfg, mk()).run(kind.build().as_mut(), &mut plain_ex);
        let mut policies: Vec<Box<dyn SchedulingPolicy>> = vec![kind.build()];
        let cluster = ClusterSimulation::new(vec![ReplicaConfig::new(cfg)], mk()).run(
            RouterKind::ALL[router_idx].build().as_mut(),
            &mut policies,
            std::slice::from_mut(&mut cluster_ex),
        );
        let r = &cluster.replicas[0];
        prop_assert_eq!(&r.stage_stats, &plain.stage_stats);
        prop_assert_eq!(r.total_time_s.to_bits(), plain.total_time_s.to_bits());
        prop_assert_eq!(r.completed.len(), plain.completed.len());
        for (a, b) in r.completed.iter().zip(&plain.completed) {
            prop_assert_eq!(a.request, b.request);
            prop_assert_eq!(a.first_token_s.to_bits(), b.first_token_s.to_bits());
            prop_assert_eq!(a.last_token_s.to_bits(), b.last_token_s.to_bits());
        }
        prop_assert_eq!(r.kv_reuse, plain.kv_reuse);
        prop_assert_eq!(
            plain_ex.total_cost().energy.total().to_bits(),
            cluster_ex.total_cost().energy.total().to_bits()
        );
    }

    /// Fleet totals stay pinned to the reference oracle: running the
    /// same routed fleet once on the incremental delta path and once
    /// through per-request `stage_cost_reference` pricing must agree
    /// per replica — timeline and energy — within 1e-9 relative.
    /// (Round-robin placement is pricing-independent, so both runs
    /// route identically.)
    #[test]
    fn cluster_totals_equal_reference_pricing_sum(
        mean_in in 32u64..256,
        mean_out in 4u64..24,
        requests in 6usize..18,
        batch in 1usize..8,
        seed in 0u64..1000,
        qps in 50.0f64..2000.0,
        replicas in 2usize..5,
        multi_turn_bit in 0u8..2,
    ) {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let mut fast: Vec<SystemExecutor> = (0..replicas)
            .map(|_| SystemExecutor::new(system.clone(), model.clone(), 1))
            .collect();
        let mut oracle: Vec<ReferenceExec> = (0..replicas)
            .map(|_| ReferenceExec::new(SystemExecutor::new(system.clone(), model.clone(), 1)))
            .collect();
        let cfg = SimulationConfig {
            max_batch: batch,
            kv_capacity_bytes: fast[0].kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..SimulationConfig::default()
        };
        let mk = || {
            let mut s = Scenario::new(
                "prop",
                Workload::gaussian(mean_in, mean_out).with_seed(seed),
                Arrivals::Poisson { qps },
                requests,
            );
            if multi_turn_bit == 1 {
                s = s.with_conversation(ConversationSpec::chat(0.6, 3, 0.05, 16));
            }
            s
        };
        let configs = vec![ReplicaConfig::new(cfg); replicas];
        let mut p1: Vec<Box<dyn SchedulingPolicy>> =
            (0..replicas).map(|_| PolicyKind::Fcfs.build()).collect();
        let a = ClusterSimulation::new(configs.clone(), mk()).run(
            &mut duplex::sched::RoundRobin::default(),
            &mut p1,
            &mut fast,
        );
        let mut p2: Vec<Box<dyn SchedulingPolicy>> =
            (0..replicas).map(|_| PolicyKind::Fcfs.build()).collect();
        let b = ClusterSimulation::new(configs, mk()).run(
            &mut duplex::sched::RoundRobin::default(),
            &mut p2,
            &mut oracle,
        );
        prop_assert_eq!(a.completed(), b.completed());
        prop_assert_eq!(a.generated_tokens(), b.generated_tokens());
        for (ra, rb) in a.replicas.iter().zip(&b.replicas) {
            prop_assert_eq!(ra.stage_stats.stages, rb.stage_stats.stages);
            prop_assert!(
                rel_diff(ra.total_time_s, rb.total_time_s) < 1e-9,
                "replica time {} vs reference {}",
                ra.total_time_s,
                rb.total_time_s
            );
        }
        prop_assert!(rel_diff(a.total_time_s, b.total_time_s) < 1e-9);
        // Fleet energy: the sum of per-replica delta-path totals must
        // match the sum of reference-priced totals.
        let fast_energy: f64 = fast.iter().map(|e| e.total_cost().energy.total()).sum();
        let oracle_energy: f64 = oracle.iter().map(|e| e.energy_j).sum();
        prop_assert!(
            rel_diff(fast_energy, oracle_energy) < 1e-9,
            "fleet energy {} vs reference {}",
            fast_energy,
            oracle_energy
        );
    }

    /// The grouped fast path equals the per-request reference for
    /// arbitrary prefill-with-past stages: random `(new, past)` pairs,
    /// held chunk slices, duplicated groups — the tentpole's exactness
    /// claim at the single-stage level.
    #[test]
    fn prefill_with_past_grouped_equals_reference(
        decode_ctx in proptest::collection::vec(16u64..2000, 0..12),
        prefills in proptest::collection::vec((16u64..512, 0u64..2048, 0u8..2), 1..6),
        dup in 0u8..2,
        seed in 0u64..500,
    ) {
        let model = ModelConfig::mixtral_8x7b();
        let mut shape = StageShape::decode_only(&decode_ctx);
        for &(len, past, hold) in &prefills {
            shape.push_prefill(len, past, hold == 1);
        }
        if dup == 1 {
            // Duplicate the first prefill so grouping has work to do.
            let (len, past, hold) = (
                shape.prefill_len[0],
                shape.prefill_past_of(0),
                !shape.prefill_samples(0),
            );
            shape.push_prefill(len, past, hold);
        }
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex_pe_et(4, 1),
            SystemConfig::hetero(),
        ] {
            let name = system.name.clone();
            let mut fast = SystemExecutor::new(system.clone(), model.clone(), seed);
            let mut naive = SystemExecutor::new(system, model.clone(), seed);
            let a = fast.stage_cost(&shape);
            let b = naive.stage_cost_reference(&shape);
            prop_assert!(rel_diff(a.seconds, b.seconds) < 1e-9, "{name}: seconds");
            prop_assert!(
                rel_diff(a.time.attn_prefill, b.time.attn_prefill) < 1e-9,
                "{name}: attn_prefill"
            );
            prop_assert!(rel_diff(a.energy.total(), b.energy.total()) < 1e-9, "{name}: energy");
        }
    }

    /// Same trace equivalence on the two-node Grok cluster, where
    /// incremental pricing must also reproduce round-robin data-parallel
    /// placement of the carried groups.
    #[test]
    fn incremental_trace_equals_reference_two_nodes(
        mean_out in 4u64..24,
        requests in 4usize..12,
        batch in 1usize..8,
        seed in 0u64..200,
    ) {
        let model = ModelConfig::grok1();
        let system = SystemConfig::duplex_pe_et(8, 2);
        let mut inc = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut oracle = ReferenceExec::new(SystemExecutor::new(system, model.clone(), 1));
        let cfg = SimulationConfig {
            max_batch: batch,
            kv_capacity_bytes: inc.kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..SimulationConfig::default()
        };
        let workload = Workload::gaussian(128, mean_out).with_seed(seed);
        let a = Simulation::closed_loop(cfg, workload.clone(), requests).run(&mut inc);
        let b = Simulation::closed_loop(cfg, workload, requests).run(&mut oracle);
        prop_assert_eq!(a.stages.len(), b.stages.len());
        for (i, (sa, sb)) in a.stages.iter().zip(&b.stages).enumerate() {
            prop_assert!(
                rel_diff(sa.seconds, sb.seconds) < 1e-9,
                "stage {}: incremental {} vs reference {}",
                i, sa.seconds, sb.seconds
            );
        }
        prop_assert!(rel_diff(a.total_time_s, b.total_time_s) < 1e-9, "total time");
    }

    /// Stage costs are positive, finite, and co-processing never makes a
    /// stage slower than the serialized breakdown.
    #[test]
    fn stage_cost_sane(
        batch in 1usize..24,
        ctx in 16u64..3000,
        prefill in proptest::option::of(64u64..1500),
        seed in 0u64..1000,
    ) {
        let model = ModelConfig::mixtral_8x7b();
        for system in [SystemConfig::gpu(4, 1), SystemConfig::duplex_pe(4, 1)] {
            let mut ex = SystemExecutor::new(system, model.clone(), seed);
            let shape = match prefill {
                Some(p) => StageShape::mixed(&vec![ctx; batch], &[p]),
                None => StageShape::decode_only(&vec![ctx; batch]),
            };
            let c = ex.stage_cost(&shape);
            prop_assert!(c.seconds.is_finite() && c.seconds > 0.0);
            prop_assert!(c.seconds <= c.time.total() + 1e-12);
            prop_assert!(c.energy.total() > 0.0);
        }
    }

    /// More decode requests never make a stage cheaper.
    #[test]
    fn stage_cost_monotone_in_batch(batch in 1usize..16, ctx in 64u64..2048) {
        let model = ModelConfig::mixtral_8x7b();
        let mut ex = SystemExecutor::new(SystemConfig::gpu(4, 1), model, 0);
        let small = ex.stage_cost(&StageShape::decode_only(&vec![ctx; batch]));
        let large = ex.stage_cost(&StageShape::decode_only(&vec![ctx; batch * 2]));
        prop_assert!(large.seconds >= small.seconds * 0.999);
    }

    /// The expert split never exceeds either single-unit assignment.
    #[test]
    fn expert_split_bounded(costs in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..24)) {
        let s = split_experts(&costs);
        let all_pim: f64 = costs.iter().map(|c| c.0).sum();
        let all_xpu: f64 = costs.iter().map(|c| c.1).sum();
        prop_assert!(s.makespan() <= all_pim + 1e-9);
        prop_assert!(s.makespan() <= all_xpu + 1e-9);
        prop_assert_eq!(s.pim_experts.len() + s.xpu_experts.len(), costs.len());
    }

    /// Router counts always sum to tokens * top_k, for any expert count.
    #[test]
    fn router_conserves_tokens(
        n_experts in 1u32..96,
        tokens in 0u64..5000,
        seed in 0u64..500,
        skew in 0.0f64..2.0,
    ) {
        let top_k = 1 + (seed % u64::from(n_experts)) as u32;
        let router = ExpertRouter::zipf(n_experts, top_k.min(n_experts), skew);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = router.route(&mut rng, tokens);
        prop_assert_eq!(counts.iter().sum::<u64>(), tokens * u64::from(router.top_k()));
    }

    /// Roofline: more DRAM bytes never make a GEMM faster; more tokens
    /// never lower total time.
    #[test]
    fn kernel_cost_monotone(m in 1u64..512, bytes in 1u64..200_000_000) {
        let pim = Engine::logic_pim();
        let shape = GemmShape { m, n: 14336, k: 4096 };
        let a = pim.gemm_cost(shape, bytes);
        let b = pim.gemm_cost(shape, bytes * 2);
        prop_assert!(b.seconds >= a.seconds - 1e-15);
        let taller = GemmShape { m: m * 2, ..shape };
        let c = pim.gemm_cost(taller, bytes);
        prop_assert!(c.seconds >= a.seconds - 1e-15);
    }

    /// Fleet aggregation is order-independent: merging per-replica
    /// digests and SLO counters in any replica order yields the same
    /// population — counts exactly, floating-point accumulators to
    /// within reassociation noise.
    #[test]
    fn digest_and_slo_merge_are_order_independent(
        groups in proptest::collection::vec(
            proptest::collection::vec(1e-6f64..10.0, 0..40), 2..6),
        perm_seed in 0u64..10_000,
    ) {
        // Seeded Fisher-Yates: a uniform permutation of the replicas.
        let mut perm: Vec<usize> = (0..groups.len()).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..perm.len()).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let replica = |samples: &[f64]| {
            let mut digest = LatencyDigest::default();
            for &s in samples {
                digest.record(s);
            }
            let met = (samples.len() / 2) as u64;
            let slo = SloStats {
                tiers: vec![TierStats {
                    name: "interactive".into(),
                    t2ft_deadline_s: 0.01,
                    tbt_deadline_s: 0.001,
                    completed: samples.len() as u64,
                    met,
                    good_tokens: 32 * met,
                    tbt_digest: digest.clone(),
                }],
            };
            (digest, slo)
        };
        let mut fwd_digest = LatencyDigest::default();
        let mut fwd_slo = SloStats::default();
        for g in &groups {
            let (d, s) = replica(g);
            fwd_digest.merge(&d);
            fwd_slo.merge(&s);
        }
        let mut perm_digest = LatencyDigest::default();
        let mut perm_slo = SloStats::default();
        for &i in &perm {
            let (d, s) = replica(&groups[i]);
            perm_digest.merge(&d);
            perm_slo.merge(&s);
        }
        // Counts (and everything derived from them) are exact.
        prop_assert_eq!(fwd_digest.count(), perm_digest.count());
        let (a, b) = (fwd_digest.summary(), perm_digest.summary());
        prop_assert_eq!(a.count, b.count);
        // Quantiles and means come from f64 bucket sums: equal up to
        // reassociation of the per-replica additions.
        prop_assert!(rel_diff(a.p50, b.p50) < 1e-12);
        prop_assert!(rel_diff(a.p99, b.p99) < 1e-12);
        prop_assert!(rel_diff(a.mean, b.mean) < 1e-12);
        let (ft, pt) = (&fwd_slo.tiers, &perm_slo.tiers);
        prop_assert_eq!(ft.len(), pt.len());
        for (x, y) in ft.iter().zip(pt) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.completed, y.completed);
            prop_assert_eq!(x.met, y.met);
            prop_assert_eq!(x.good_tokens, y.good_tokens);
            prop_assert_eq!(x.tbt_digest.count(), y.tbt_digest.count());
        }
        prop_assert!(rel_diff(fwd_slo.attainment(), perm_slo.attainment()) < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash → retry → recover is deterministic machinery, not noise:
    /// on a 3-replica fleet with conversations and SLO tiers, a
    /// randomized mid-run crash (random time, outage length, retry
    /// budget) must (a) replay byte-identically between the serial
    /// oracle and parallel windows, and (b) survive a snapshot taken
    /// mid-outage — JSON round-trip included — resuming to the exact
    /// uninterrupted report. Both claims hold for every shipped router.
    #[test]
    fn crash_retry_recover_is_deterministic_and_resumable(
        mean_in in 32u64..128,
        mean_out in 4u64..16,
        requests in 8usize..20,
        seed in 0u64..1000,
        qps in 100.0f64..800.0,
        crash_frac in 0.2f64..0.6,
        down_s in 0.005f64..0.05,
        max_retries in 0u32..4,
    ) {
        let cfg = SimulationConfig {
            max_batch: 4,
            kv_capacity_bytes: 1 << 30,
            kv_bytes_per_token: 64,
            ..SimulationConfig::default()
        };
        let mk = || Scenario::new(
            "prop-crash",
            Workload::gaussian(mean_in, mean_out).with_seed(seed),
            Arrivals::Poisson { qps },
            requests,
        )
        .with_tiers(Scenario::default_tiers(0.01))
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.05, 16));
        let span_est = requests as f64 / qps;
        let crash_at = crash_frac * span_est;
        let plan = FaultPlan::new(vec![FaultEvent::new(
            crash_at,
            0,
            FaultKind::Crash { down_s },
        )])
        .with_retry(RetryPolicy::new(max_retries).with_backoff(0.001, 2.0))
        .with_warmup(0.01, 2.0)
        .with_recovery_tracking(0.7, span_est / 20.0, 0.05);
        let configs = vec![ReplicaConfig::new(cfg); 3];
        for kind in RouterKind::ALL {
            let mk_sim =
                || ClusterSimulation::new(configs.clone(), mk()).with_faults(plan.clone());
            let mk_pol = || -> Vec<Box<dyn SchedulingPolicy>> {
                (0..3).map(|_| PolicyKind::PriorityTiers.build()).collect()
            };
            let serial = mk_sim().with_config(ClusterConfig::serial()).run(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 3],
            );
            let parallel = mk_sim()
                .with_config(ClusterConfig {
                    parallel: true,
                    threads: 3,
                })
                .run(
                    kind.build().as_mut(),
                    &mut mk_pol(),
                    &mut [FixedStage(0.002); 3],
                );
            prop_assert_eq!(&serial, &parallel);
            prop_assert_eq!(serial.recovery.faults_injected, 1);
            if max_retries == 0 {
                prop_assert_eq!(serial.recovery.retries_issued, 0);
            } else {
                prop_assert_eq!(serial.recovery.requests_dropped, 0);
            }

            // Pause mid-outage (the crashed replica is still down),
            // push the snapshot through JSON, resume fresh.
            let stop_s = crash_at + 0.5 * down_s;
            let paused = mk_sim().run_until(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 3],
                stop_s,
            );
            if let Some(snapshot) = paused.snapshot() {
                let restored = ClusterSnapshot::from_json(&snapshot.to_json())
                    .expect("the wire format round-trips");
                prop_assert_eq!(&restored, &snapshot);
                let resumed = mk_sim()
                    .resume(
                        &restored,
                        kind.build().as_mut(),
                        &mut mk_pol(),
                        &mut [FixedStage(0.002); 3],
                    )
                    .expect("the snapshot matches the fleet");
                prop_assert_eq!(&resumed, &serial);
            }
        }
    }

    /// Elastic autoscaling is deterministic machinery too: on a
    /// 5-replica pool over randomized diurnal load (amplitude, period,
    /// offered rate) with randomized autoscaler thresholds and
    /// provisioning, the run must (a) replay byte-identically between
    /// the serial oracle and parallel windows, (b) survive a snapshot
    /// taken mid-run — pool membership, hysteresis streaks and
    /// in-flight scale events all live — resuming through JSON to the
    /// exact uninterrupted report, and (c) never bill the fleet below
    /// the configured replica floor.
    #[test]
    fn autoscaling_is_deterministic_resumable_and_floored(
        mean_in in 32u64..128,
        mean_out in 4u64..16,
        requests in 12usize..24,
        seed in 0u64..1000,
        qps in 200.0f64..900.0,
        amplitude in 0.3f64..0.95,
        periods in 1.5f64..4.0,
        up_pressure in 0.6f64..1.6,
        down_pressure in 0.05f64..0.45,
        up_windows in 1u32..3,
        down_windows in 1u32..4,
        provision_s in 0.001f64..0.02,
        warmup_s in 0.0f64..0.01,
        min_replicas in 1usize..4,
        stop_frac in 0.15f64..0.85,
    ) {
        let cfg = SimulationConfig {
            max_batch: 4,
            kv_capacity_bytes: 1 << 30,
            kv_bytes_per_token: 64,
            ..SimulationConfig::default()
        };
        let span_est = requests as f64 / qps;
        let mk = || Scenario::new(
            "prop-autoscale",
            Workload::gaussian(mean_in, mean_out).with_seed(seed),
            Arrivals::Diurnal {
                mean_qps: qps,
                period_s: span_est / periods,
                amplitude,
            },
            requests,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let policy = AutoscalePolicy::new(min_replicas)
            .with_pressure(up_pressure, down_pressure)
            .with_cadence(span_est / 40.0, up_windows, down_windows)
            .with_cooldown(span_est / 40.0)
            .with_provisioning(provision_s, warmup_s, 1.5);
        let configs = vec![ReplicaConfig::new(cfg); 5];
        let kind = RouterKind::LeastOutstandingWork;
        let mk_sim =
            || ClusterSimulation::new(configs.clone(), mk()).with_autoscale(policy.clone());
        let mk_pol = || -> Vec<Box<dyn SchedulingPolicy>> {
            (0..5).map(|_| PolicyKind::PriorityTiers.build()).collect()
        };
        let serial = mk_sim().with_config(ClusterConfig::serial()).run(
            kind.build().as_mut(),
            &mut mk_pol(),
            &mut [FixedStage(0.002); 5],
        );
        let parallel = mk_sim()
            .with_config(ClusterConfig {
                parallel: true,
                threads: 3,
            })
            .run(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 5],
            );
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.completed(), requests);

        // The floor holds: every drain the autoscaler issued left at
        // least `min_replicas` admitting, so the fleet can never have
        // billed less than the floor's share of the run — and the pool
        // can never have been over-drained into negative membership.
        prop_assert!(serial.scaling.scale_downs <= serial.scaling.scale_ups);
        let floor_bill = min_replicas as f64 * serial.total_time_s;
        prop_assert!(
            serial.replica_seconds >= floor_bill - 1e-9,
            "billed {} replica-seconds, the floor alone is {}",
            serial.replica_seconds,
            floor_bill
        );
        if serial.scaling.scale_ups > 0 {
            prop_assert!(serial.scaling.scale_up_lag_s > 0.0);
        }

        // Pause mid-run, push the snapshot through JSON, resume fresh.
        let stop_s = stop_frac * serial.total_time_s;
        let paused = mk_sim().run_until(
            kind.build().as_mut(),
            &mut mk_pol(),
            &mut [FixedStage(0.002); 5],
            stop_s,
        );
        if let Some(snapshot) = paused.snapshot() {
            let restored = ClusterSnapshot::from_json(&snapshot.to_json())
                .expect("the wire format round-trips");
            prop_assert_eq!(&restored, &snapshot);
            let resumed = mk_sim()
                .resume(
                    &restored,
                    kind.build().as_mut(),
                    &mut mk_pol(),
                    &mut [FixedStage(0.002); 5],
                )
                .expect("the snapshot matches the fleet");
            prop_assert_eq!(&resumed, &serial);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Disaggregation moves work, it does not invent any: over a free
    /// interconnect (infinite bandwidth, zero latency) and identical
    /// replicas, a prefill/decode pool split prices exactly the same
    /// total stage seconds as the colocated oracle under a linear
    /// per-token executor — the prompt runs as held chunks on the
    /// prefill pool plus a one-token context join on the decode pool,
    /// the same token population the colocated fleet prices in one
    /// admission. Holds for every shipped router.
    #[test]
    fn zero_cost_link_disagg_prices_the_colocated_token_population(
        mean_in in 16u64..96,
        mean_out in 4u64..16,
        requests in 8usize..20,
        seed in 0u64..1000,
        qps in 100.0f64..800.0,
    ) {
        let cfg = SimulationConfig {
            max_batch: 4,
            kv_capacity_bytes: 1 << 30,
            kv_bytes_per_token: 64,
            ..SimulationConfig::default()
        };
        let mk = || Scenario::new(
            "prop-disagg",
            Workload::gaussian(mean_in, mean_out).with_seed(seed),
            Arrivals::Poisson { qps },
            requests,
        );
        let configs = vec![ReplicaConfig::new(cfg); 4];
        let free_link = KvLinkSpec::new(f64::INFINITY, 0.0);
        let mk_pol = || -> Vec<Box<dyn SchedulingPolicy>> {
            (0..4).map(|_| PolicyKind::Fcfs.build()).collect()
        };
        for kind in RouterKind::ALL {
            let mut colo_ex = TokenLinear::fleet(4);
            let colocated = ClusterSimulation::new(configs.clone(), mk()).run(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut colo_ex,
            );
            let mut split_ex = TokenLinear::fleet(4);
            let split = ClusterSimulation::new(configs.clone(), mk())
                .with_disagg(DisaggPlan::new(vec![0, 1]).with_link(free_link))
                .run(kind.build().as_mut(), &mut mk_pol(), &mut split_ex);

            prop_assert_eq!(colocated.completed(), requests);
            prop_assert_eq!(split.completed(), requests);
            prop_assert_eq!(split.disagg.handoffs as usize, requests);
            prop_assert_eq!(split.disagg.reprefills, 0);
            prop_assert_eq!(split.disagg.transfer_seconds, 0.0);

            let colo_s: f64 = colo_ex.iter().map(|e| e.total_s).sum();
            let split_s: f64 = split_ex.iter().map(|e| e.total_s).sum();
            prop_assert!(
                rel_diff(colo_s, split_s) <= 1e-9,
                "router {:?}: colocated priced {colo_s} stage-seconds, the pool split {split_s}",
                kind
            );
        }
    }

    /// The placement API's compatibility contract: on a fleet with no
    /// prefill pool, every shipped router's two-dimensional
    /// [`Router::place`] is byte-identical to its one-dimensional
    /// [`Router::decide`] lifted into `prefill == decode` — for any
    /// snapshot the balancer might poll and any request sequence, with
    /// router state evolving in lockstep across the whole sequence.
    #[test]
    fn colocated_place_is_decide_lifted_for_every_router(
        fleet in proptest::collection::vec(
            (0usize..8, 0usize..8, 0u64..5000, 0u64..(1 << 20), 0.5f64..2.0, 0u8..2),
            2..6,
        ),
        traffic in proptest::collection::vec(
            (1u64..2048, 1u64..256, 0u64..500, 0u64..64),
            1..12,
        ),
    ) {
        let replicas: Vec<ReplicaSnapshot> = fleet
            .iter()
            .enumerate()
            .map(|(i, &(in_flight, queued, outstanding, kv, weight, accepts))| {
                ReplicaSnapshot {
                    now_s: 0.0,
                    in_flight,
                    queued,
                    max_batch: 8,
                    outstanding_tokens: outstanding,
                    kv_reserved_bytes: kv,
                    kv_capacity_bytes: 1 << 30,
                    weight,
                    resident_history_tokens: 0,
                    // Routers may only avoid non-accepting replicas
                    // while an accepting one exists; pin one.
                    accepting: accepts == 1 || i == 0,
                    role: PoolRole::Colocated,
                    transfer_backlog_bytes: 0,
                }
            })
            .collect();
        for kind in RouterKind::ALL {
            let mut placed = kind.build();
            let mut decided = kind.build();
            for (i, &(input, output, conversation, history)) in traffic.iter().enumerate() {
                let pending = PendingRequest {
                    request: Request {
                        id: i as u64,
                        arrival_s: i as f64 * 1e-3,
                        input_len: input,
                        output_len: output,
                    },
                    tier: 0,
                    priority: 0,
                    deadline_s: f64::INFINITY,
                    conversation,
                    round: 1,
                    history_tokens: history.min(input.saturating_sub(1)),
                    skipped: 0,
                };
                let two_d = placed.place(&pending, &replicas);
                let one_d = Placement::from_decision(decided.decide(&pending, &replicas));
                prop_assert!(
                    two_d == one_d,
                    "router {:?}, request {}: place {:?} != lifted decide {:?}",
                    kind,
                    i,
                    two_d,
                    one_d
                );
                prop_assert!(two_d.is_colocated());
            }
            prop_assert_eq!(placed.export_state(), decided.export_state());
        }
    }

    /// A disaggregated fleet is deterministic machinery end to end: on
    /// a 2+2 pool split over a priced interconnect, the run must (a)
    /// replay byte-identically between the serial oracle and parallel
    /// windows, and (b) survive a snapshot taken at a random fraction
    /// of the run — admission-time decode assignments mid-transfer —
    /// resuming through JSON to the exact uninterrupted report. Both
    /// claims hold for every shipped router.
    #[test]
    fn disaggregated_serving_is_deterministic_and_resumable(
        mean_in in 32u64..128,
        mean_out in 4u64..16,
        requests in 8usize..20,
        seed in 0u64..1000,
        qps in 100.0f64..800.0,
        link_bytes_per_s in 1e5f64..1e7,
        link_latency_s in 0.0f64..0.005,
        stop_frac in 0.15f64..0.85,
    ) {
        let cfg = SimulationConfig {
            max_batch: 4,
            kv_capacity_bytes: 1 << 30,
            kv_bytes_per_token: 64,
            ..SimulationConfig::default()
        };
        let mk = || Scenario::new(
            "prop-disagg-snap",
            Workload::gaussian(mean_in, mean_out).with_seed(seed),
            Arrivals::Poisson { qps },
            requests,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let plan = DisaggPlan::new(vec![0, 1])
            .with_link(KvLinkSpec::new(link_bytes_per_s, link_latency_s));
        let configs = vec![ReplicaConfig::new(cfg); 4];
        for kind in RouterKind::ALL {
            let mk_sim =
                || ClusterSimulation::new(configs.clone(), mk()).with_disagg(plan.clone());
            let mk_pol = || -> Vec<Box<dyn SchedulingPolicy>> {
                (0..4).map(|_| PolicyKind::PriorityTiers.build()).collect()
            };
            let serial = mk_sim().with_config(ClusterConfig::serial()).run(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 4],
            );
            let parallel = mk_sim()
                .with_config(ClusterConfig {
                    parallel: true,
                    threads: 3,
                })
                .run(
                    kind.build().as_mut(),
                    &mut mk_pol(),
                    &mut [FixedStage(0.002); 4],
                );
            prop_assert_eq!(&serial, &parallel);
            prop_assert_eq!(serial.completed(), requests);
            prop_assert_eq!(serial.disagg.handoffs as usize, requests);
            prop_assert!(serial.disagg.kv_bytes_shipped > 0);

            // Pause mid-run, push the snapshot through JSON, resume fresh.
            let stop_s = stop_frac * serial.total_time_s;
            let paused = mk_sim().run_until(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 4],
                stop_s,
            );
            if let Some(snapshot) = paused.snapshot() {
                let restored = ClusterSnapshot::from_json(&snapshot.to_json())
                    .expect("the wire format round-trips");
                prop_assert_eq!(&restored, &snapshot);
                let resumed = mk_sim()
                    .resume(
                        &restored,
                        kind.build().as_mut(),
                        &mut mk_pol(),
                        &mut [FixedStage(0.002); 4],
                    )
                    .expect("the snapshot matches the fleet");
                prop_assert_eq!(&resumed, &serial);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Preemption keeps the incremental fast path honest: with pauses
    /// retiring victims mid-decode, swap restores rejoining at full
    /// context and recomputes re-prefilling from scratch, the delta
    /// path must still price every stage exactly like the per-request
    /// `stage_cost_reference` oracle — within 1e-9 relative — over
    /// randomized preemption thresholds, swap/recompute price ratios
    /// and multiplex settings.
    #[test]
    fn preemptive_trace_equals_reference(
        mean_in in 32u64..192,
        mean_out in 16u64..64,
        requests in 8usize..20,
        batch in 2usize..6,
        seed in 0u64..1000,
        qps in 100.0f64..1200.0,
        threshold in 0.5f64..0.95,
        swap_gb_s in 1e8f64..1e10,
        swap_lat in 1e-4f64..5e-3,
        recompute_rate in 1e3f64..1e5,
        mode_idx in 0usize..3,
        chunk in proptest::option::of(8u64..64),
        mux_bit in 0u8..2,
    ) {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let mut inc = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut oracle = ReferenceExec::new(SystemExecutor::new(system, model.clone(), 1));
        let cfg = SimulationConfig {
            max_batch: batch,
            kv_capacity_bytes: inc.kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..SimulationConfig::default()
        };
        let mk = || Scenario::new(
            "prop-preempt",
            Workload::gaussian(mean_in, mean_out).with_seed(seed),
            Arrivals::Poisson { qps },
            requests,
        )
        .with_tiers(Scenario::default_tiers(0.01))
        .with_prefill_chunk(chunk.unwrap_or(0));
        let mode = [PreemptMode::Auto, PreemptMode::SwapOnly, PreemptMode::RecomputeOnly][mode_idx];
        let spec = PreemptSpec::new()
            .with_threshold(threshold)
            .with_swap_link(swap_gb_s, swap_lat)
            .with_recompute_rate(recompute_rate)
            .with_mode(mode);
        let mk_pol = || {
            let p = PreemptionPolicy::new(Box::new(PriorityTiers), spec);
            if mux_bit == 1 {
                p.with_multiplex(MultiplexSpec::new())
            } else {
                p
            }
        };
        let a = ScenarioSimulation::new(cfg, mk()).run(&mut mk_pol(), &mut inc);
        let b = ScenarioSimulation::new(cfg, mk()).run(&mut mk_pol(), &mut oracle);
        prop_assert_eq!(a.stages.len(), b.stages.len());
        for (i, (sa, sb)) in a.stages.iter().zip(&b.stages).enumerate() {
            prop_assert_eq!(sa.batch, sb.batch);
            prop_assert!(
                rel_diff(sa.seconds, sb.seconds) < 1e-9,
                "stage {}: incremental {} vs reference {}",
                i, sa.seconds, sb.seconds
            );
        }
        prop_assert!(rel_diff(a.total_time_s, b.total_time_s) < 1e-9, "total time");
        prop_assert!(
            rel_diff(inc.total_cost().energy.total(), oracle.energy_j) < 1e-9,
            "energy"
        );
        prop_assert_eq!(a.completed.len(), b.completed.len());
        prop_assert_eq!(a.completed.len(), requests);
        // Identical pricing means identical scheduling decisions:
        // the preemption machinery itself replays exactly.
        prop_assert_eq!(a.preempt, b.preempt);
        match mode {
            PreemptMode::SwapOnly => {}
            PreemptMode::RecomputeOnly => prop_assert_eq!(a.preempt.swaps, 0),
            PreemptMode::Auto => {}
        }
    }

    /// A preempting fleet is deterministic machinery end to end: on a
    /// 3-replica cluster with conversations, tiers and randomized
    /// preemption specs, (a) serial and parallel stepping replay
    /// byte-identically, and (b) a snapshot taken mid-run — paused
    /// requests and multiplex slots in flight — survives the JSON wire
    /// format and resumes to the exact uninterrupted report. Both
    /// claims hold for every shipped router.
    #[test]
    fn preemptive_cluster_is_deterministic_and_resumable(
        mean_in in 32u64..128,
        mean_out in 8u64..24,
        requests in 8usize..20,
        seed in 0u64..1000,
        qps in 100.0f64..800.0,
        threshold in 0.5f64..0.95,
        swap_gb_s in 1e8f64..1e10,
        swap_lat in 1e-4f64..5e-3,
        recompute_rate in 1e3f64..1e5,
        mode_idx in 0usize..3,
        mux_bit in 0u8..2,
        stop_frac in 0.15f64..0.85,
    ) {
        let cfg = SimulationConfig {
            max_batch: 4,
            kv_capacity_bytes: 1 << 22,
            kv_bytes_per_token: 64,
            ..SimulationConfig::default()
        };
        let mk = || Scenario::new(
            "prop-preempt-fleet",
            Workload::gaussian(mean_in, mean_out).with_seed(seed),
            Arrivals::Poisson { qps },
            requests,
        )
        .with_tiers(Scenario::default_tiers(0.01))
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.05, 16));
        let mode = [PreemptMode::Auto, PreemptMode::SwapOnly, PreemptMode::RecomputeOnly][mode_idx];
        let spec = PreemptSpec::new()
            .with_threshold(threshold)
            .with_swap_link(swap_gb_s, swap_lat)
            .with_recompute_rate(recompute_rate)
            .with_mode(mode);
        let mk_pol = || -> Vec<Box<dyn SchedulingPolicy>> {
            (0..3)
                .map(|_| {
                    let p = PreemptionPolicy::new(Box::new(PriorityTiers), spec);
                    let p = if mux_bit == 1 {
                        p.with_multiplex(MultiplexSpec::new())
                    } else {
                        p
                    };
                    Box::new(p) as Box<dyn SchedulingPolicy>
                })
                .collect()
        };
        let configs = vec![ReplicaConfig::new(cfg); 3];
        for kind in RouterKind::ALL {
            let mk_sim = || ClusterSimulation::new(configs.clone(), mk());
            let serial = mk_sim().with_config(ClusterConfig::serial()).run(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 3],
            );
            let parallel = mk_sim()
                .with_config(ClusterConfig {
                    parallel: true,
                    threads: 3,
                })
                .run(
                    kind.build().as_mut(),
                    &mut mk_pol(),
                    &mut [FixedStage(0.002); 3],
                );
            prop_assert_eq!(&serial, &parallel);

            // Pause mid-run, push the snapshot through JSON, resume
            // fresh. Paused requests and multiplex slots in flight at
            // the stop ride the snapshot.
            let stop_s = stop_frac * serial.total_time_s;
            let paused = mk_sim().run_until(
                kind.build().as_mut(),
                &mut mk_pol(),
                &mut [FixedStage(0.002); 3],
                stop_s,
            );
            if let Some(snapshot) = paused.snapshot() {
                let restored = ClusterSnapshot::from_json(&snapshot.to_json())
                    .expect("the wire format round-trips");
                prop_assert_eq!(&restored, &snapshot);
                let resumed = mk_sim()
                    .resume(
                        &restored,
                        kind.build().as_mut(),
                        &mut mk_pol(),
                        &mut [FixedStage(0.002); 3],
                    )
                    .expect("the snapshot matches the fleet");
                prop_assert_eq!(&resumed, &serial);
            }
        }
    }
}
