//! Cluster serving: a fleet of Grok-scale replicas (three Duplex+PE+ET
//! nodes plus one GPU-only straggler, 2x8 devices each) serves
//! multi-turn, SLO-tiered chat behind a load balancer — and the
//! routing discipline decides whether the fleet keeps its prefix-reuse
//! rate and its interactive deadlines.
//!
//! * round-robin scatters follow-up rounds away from their parked KV
//!   (every reuse miss re-prefills the whole conversation history) and
//!   feeds the slow replica a full quarter of the traffic;
//! * least-outstanding-work balances by capacity-weighted queue depth,
//!   protecting interactive T2FT deadlines;
//! * session-affinity pins conversations to the replica holding their
//!   KV (spilling when it saturates), keeping the fleet-wide reuse
//!   fraction — and with it the TBT tail — close to the single-node
//!   number.
//!
//! Run with `cargo run --release --example cluster_serving`.

use duplex::experiments::{cluster_suite, run_cluster, ClusterRow, Scale};
use duplex::sched::RouterKind;

fn main() {
    let scale = Scale::quick();
    let suite = cluster_suite(&scale);
    let spec = suite
        .iter()
        .find(|s| s.name == "grok_chat_tiered")
        .expect("the cluster suite ships the grok fleet");

    println!(
        "{} replicas serving {} ({} conversations, 4 rounds each):",
        spec.systems.len(),
        spec.model.name,
        spec.scenario.requests
    );
    for (i, system) in spec.systems.iter().enumerate() {
        println!(
            "  replica {i}: {} ({}x{} devices)",
            system.name, system.nodes, system.devices_per_node
        );
    }
    println!(
        "\n{:<20} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "Router", "tokens/s", "KV reuse", "TBT p99 ms", "int. SLO", "imbalance"
    );

    for kind in RouterKind::ALL {
        let mut router = kind.build();
        let report = run_cluster(spec, router.as_mut());
        let row = ClusterRow::of(spec, kind.name(), &report);
        println!(
            "{:<20} {:>10.0} {:>9.1}% {:>12.2} {:>9.1}% {:>10.2}",
            row.router,
            row.throughput,
            row.kv_reuse_fraction * 100.0,
            row.tbt_p99 * 1e3,
            row.interactive_attainment * 100.0,
            row.load_imbalance
        );
    }

    println!("\nSession affinity keeps multi-turn KV reuse alive cluster-wide;");
    println!("least-outstanding-work shields interactive deadlines from the");
    println!("slow replica that round-robin keeps overfeeding.");
}
