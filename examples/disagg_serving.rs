//! Disaggregated serving drill: one long-prefill Grok-scale workload
//! offered to three four-replica fleets, showing what a prefill/decode
//! pool split buys over colocation.
//!
//! * the **colocated** fleet admits whole prompts into the mixed
//!   batch: every co-batched decode token waits out the full
//!   multi-thousand-token prefill stage;
//! * the **chunked** fleet is the adaptive-chunking incumbent: each
//!   stall is capped at an occupancy-scaled prompt budget;
//! * the **disagg** fleet splits two prefill + two decode replicas
//!   behind the two-dimensional placement API: the router picks one
//!   replica per pool at admission, prompts run (and chunk) entirely
//!   on the prefill pool, and the finished KV ships over the fleet
//!   interconnect to the decode replica, where the request joins the
//!   decode batch as a one-token context join.
//!
//! The PR's acceptance bar: disaggregation beats the chunked incumbent
//! on fleet TBT p99 while holding at least 90% of its generation
//! throughput.
//!
//! Run with `cargo run --release --example disagg_serving`.

use duplex::experiments::{grok_disagg, run_cluster, ClusterRow, Scale};
use duplex::sched::{Arrivals, RouterKind};

fn main() {
    let scale = Scale::quick();
    let drill = grok_disagg(&scale);
    let split = &drill[2];
    let plan = split
        .disagg
        .as_ref()
        .expect("the drill ships a disaggregated variant");
    let Arrivals::Poisson { qps } = split.scenario.arrivals else {
        panic!("the drill offers Poisson load");
    };

    println!(
        "{} requests of {} long-prefill traffic ({:.2} qps, mean prompt {} tokens):",
        split.scenario.requests, split.model.name, qps, split.scenario.workload.mean_input
    );
    println!(
        "  pool split: {} prefill + {} decode replicas, KV handoffs at {:.1} GB/s + {:.0} us",
        plan.prefill_replicas.len(),
        split.systems.len() - plan.prefill_replicas.len(),
        plan.link.bytes_per_s / 1e9,
        plan.link.latency_s * 1e6
    );

    println!(
        "\n{:<10} {:>6} {:>12} {:>12} {:>9} {:>9} {:>10} {:>11}",
        "Fleet", "done", "TBT p99 ms", "T2FT p50 s", "tok/s", "handoffs", "KV GB", "reprefills"
    );
    let mut rows = Vec::new();
    for spec in &drill {
        let mut router = RouterKind::LeastOutstandingWork.build_with(&spec.router_context());
        let report = run_cluster(spec, router.as_mut());
        let row = ClusterRow::of(spec, "least-outstanding", &report);
        let label = spec
            .name
            .strip_prefix("grok_long_prefill_")
            .unwrap_or(&spec.name);
        println!(
            "{:<10} {:>6} {:>12.2} {:>12.3} {:>9.0} {:>9} {:>10.2} {:>11}",
            label,
            row.completed,
            row.tbt_p99 * 1e3,
            report.t2ft().p50,
            row.throughput,
            report.disagg.handoffs,
            report.disagg.kv_bytes_shipped as f64 / 1e9,
            report.disagg.reprefills
        );
        rows.push(row);
    }

    let (chunked, disagg) = (&rows[1], &rows[2]);
    println!(
        "\nThe pool split cuts TBT p99 by {:.0}% vs the chunked incumbent at {:.0}%",
        (1.0 - disagg.tbt_p99 / chunked.tbt_p99) * 100.0,
        disagg.throughput / chunked.throughput * 100.0
    );
    println!("of its generation throughput: decode stages never co-batch a prompt.");
}
