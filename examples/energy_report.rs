//! Per-token energy report: where do the joules go?
//!
//! Breaks a Mixtral serving run's energy into the Fig. 15 buckets
//! (FC / attention / MoE, DRAM vs compute) for the GPU baseline and
//! Duplex, across batch sizes.
//!
//! Run with `cargo run --release --example energy_report`.

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

fn main() {
    let model = ModelConfig::mixtral_8x7b();
    let workload = Workload::gaussian(1024, 256);
    println!("Energy per generated token, {} (mJ)\n", model.name);
    println!(
        "{:<14} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "System",
        "Batch",
        "FC-DRAM",
        "FC-Comp",
        "At-DRAM",
        "At-Comp",
        "MoE-DRAM",
        "MoE-Comp",
        "Total"
    );
    for batch in [32usize, 64, 128] {
        for system in [SystemConfig::gpu(4, 1), SystemConfig::duplex_pe_et(4, 1)] {
            let r = run(RunConfig::closed_loop(
                model.clone(),
                system,
                workload.clone(),
                batch,
                batch + batch / 2,
            ));
            let tokens = r.report.generated_tokens().max(1) as f64;
            let e = r.cost.energy;
            let mj = |x: f64| x / tokens * 1e3;
            println!(
                "{:<14} {:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                r.system_name,
                batch,
                mj(e.fc_dram),
                mj(e.fc_comp),
                mj(e.attn_dram),
                mj(e.attn_comp),
                mj(e.moe_dram),
                mj(e.moe_comp),
                mj(e.total()),
            );
        }
    }
    println!("\nDuplex's saving comes from MoE/attention DRAM traffic that skips the");
    println!("interposer, at larger batches partially offset by xPU co-processing.");
}
