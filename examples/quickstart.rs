//! Quickstart: serve Mixtral-8x7B on a 4-GPU system and a 4-Duplex
//! system, closed loop, and compare throughput, latency and energy.
//!
//! Run with `cargo run --release --example quickstart`.

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

fn main() {
    let model = ModelConfig::mixtral_8x7b();
    println!(
        "Serving {} ({:.0}B params, {} experts, GQA degree {})",
        model.name,
        model.param_count() as f64 / 1e9,
        model.n_experts,
        model.deg_grp
    );

    let workload = Workload::gaussian(1024, 512);
    let batch = 32;
    let requests = 48;

    for system in [
        SystemConfig::gpu(4, 1),
        SystemConfig::duplex(4, 1),
        SystemConfig::duplex_pe(4, 1),
        SystemConfig::duplex_pe_et(4, 1),
    ] {
        let result = run(RunConfig::closed_loop(
            model.clone(),
            system,
            workload.clone(),
            batch,
            requests,
        ));
        println!(
            "{:>14}: {:>7.0} tokens/s | TBT p50 {:>6.2} ms p99 {:>7.2} ms | \
             T2FT p50 {:>6.0} ms | {:>5.1} mJ/token",
            result.system_name,
            result.throughput_tokens_per_s,
            result.tbt.p50 * 1e3,
            result.tbt.p99 * 1e3,
            result.t2ft.p50 * 1e3,
            result.energy_per_token_j * 1e3,
        );
    }
}
