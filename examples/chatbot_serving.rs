//! Conversational serving: multi-round dialogues where each round's
//! prompt carries the whole history (Sec. III-B motivates this: "Lin
//! continues to increase as the conversation progresses"). Requests
//! arrive as a Poisson stream; we compare how GPU, the heterogeneous
//! system and Duplex hold up as the conversation (and thus Lin) grows.
//!
//! Run with `cargo run --release --example chatbot_serving`.

use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

fn main() {
    let model = ModelConfig::mixtral_8x7b();
    println!(
        "Chatbot serving on {}: rounds grow the prompt, replies stay short\n",
        model.name
    );
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>12} {:>12}",
        "Round", "Lin", "GPU p99 TBT", "Hetero p99", "Duplex p99", "Duplex T2FT"
    );

    // Each round: history grows by ~(previous reply + new user turn).
    for (round, lin) in [(1u32, 256u64), (2, 768), (3, 1536), (4, 2560), (5, 3840)] {
        let workload = Workload::gaussian(lin, 192).with_seed(round as u64);
        let mut row = Vec::new();
        let mut duplex_t2ft = 0.0;
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::hetero(),
            SystemConfig::duplex_pe_et(4, 1),
        ] {
            let mut cfg = RunConfig::closed_loop(model.clone(), system, workload.clone(), 32, 40);
            cfg.qps = Some(24.0);
            let r = run(cfg);
            row.push(r.tbt.p99);
            duplex_t2ft = r.t2ft.p50;
        }
        println!(
            "{:<8} {:<8} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.0}ms",
            round,
            lin,
            row[0] * 1e3,
            row[1] * 1e3,
            row[2] * 1e3,
            duplex_t2ft * 1e3
        );
    }
    println!("\nThe hetero system's p99 TBT degrades fastest with round count: its");
    println!("compute-weak PIM pool owns the increasingly prefill-heavy MoE layers.");
}
