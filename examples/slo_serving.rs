//! SLO-aware serving: three service tiers (interactive / standard /
//! batch) share one Duplex system under Poisson load, and we compare
//! how the admission policy changes SLO attainment and goodput — the
//! metrics that matter once "throughput" alone stops being the goal.
//!
//! Run with `cargo run --release --example slo_serving`.

use duplex::experiments::{probe_stage_seconds, run_scenario, Scale};
use duplex::model::ModelConfig;
use duplex::sched::{Arrivals, PolicyKind, Scenario, Workload};
use duplex::system::SystemConfig;

fn main() {
    let scale = Scale::quick();
    let model = ModelConfig::mixtral_8x7b();
    let system = SystemConfig::duplex_pe_et(4, 1);
    let batch = 64usize;
    let (lin, lout) = (scale.len(1024), scale.len(512));
    let stage_s = probe_stage_seconds(&model, &system, batch, lin + lout / 2);
    let capacity_qps = batch as f64 / (lout as f64 * stage_s);

    println!("SLO-tiered serving on {} / {}:", model.name, system.name);
    println!(
        "  stage ~{:.2} ms, closed-loop capacity ~{:.0} req/s; offering 80% of it\n",
        stage_s * 1e3,
        capacity_qps
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Policy", "interactive", "standard", "batch", "overall", "goodput/s", "int p99 ms"
    );

    for kind in PolicyKind::ALL {
        let scenario = Scenario::new(
            "slo_serving",
            Workload::gaussian(lin, lout).with_seed(17),
            Arrivals::Poisson {
                qps: 0.8 * capacity_qps,
            },
            256,
        )
        .with_tiers(Scenario::default_tiers(stage_s));
        let mut policy = kind.build();
        let report = run_scenario(&model, &system, scenario, policy.as_mut(), batch);
        let att: Vec<f64> = report.slo.tiers.iter().map(|t| t.attainment()).collect();
        println!(
            "{:<14} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>12.0} {:>12.2}",
            kind.name(),
            att[0] * 100.0,
            att[1] * 100.0,
            att[2] * 100.0,
            report.slo_attainment() * 100.0,
            report.goodput_tokens_per_s(),
            report.slo.tiers[0].tbt_p99_s() * 1e3,
        );
    }
    println!("\nPriority-EDF trades batch-tier slack for interactive attainment;");
    println!("shortest-prompt-first helps T2FT but ignores deadlines entirely.");
    println!("Shedding batch-tier admissions near saturation (shed-batch)");
    println!("closes the remaining interactive gap without dropping work.");
}
