//! Preemption drill: the KV-bound near-saturation scenario of the CI
//! acceptance gate, run under every contender for the batch tier's
//! fate, side by side:
//!
//! * `priority-edf` — EDF admission, no relief valve: interactive
//!   work waits behind running batch decodes;
//! * `shed-batch` — admission-side load shedding: batch arrivals defer
//!   near saturation, queueing delay pays for attainment;
//! * `preempt` — batch-tier decodes pause mid-flight (priced KV
//!   swap-out or recompute-on-resume, whichever the cost model says is
//!   cheaper for that victim) and resume once the pressure passes;
//! * `preempt-mux` — same, plus RevMUX-style slot-sharing: paused
//!   decodes resume multiplexed into shared batch slots at a quality
//!   exchange rate (shown on its own bursty drill below, where paused
//!   backlogs actually pile up).
//!
//! The point of the first table: preemption lifts interactive
//! attainment without dropping batch work — paused service is
//! deferred, not lost.
//!
//! Run with `cargo run --release --example preemption_drill`.

use duplex::model::ops::StageShape;
use duplex::sched::{
    Arrivals, MultiplexSpec, PreemptMode, PreemptSpec, PreemptionPolicy, PriorityTiers, Scenario,
    ScenarioSimulation, SchedulingPolicy, ShedBatchTier, SimReport, SimulationConfig, SloTier,
    StageExecutor, StageOutcome, Workload,
};

/// The gate's executor: stage cost linear in prefill tokens and decode
/// rows, so pausing a decode visibly frees both time and KV budget.
struct LinearCost;
impl StageExecutor for LinearCost {
    fn execute(&mut self, shape: &StageShape) -> StageOutcome {
        let prefill: u64 = shape.prefill_len.iter().sum();
        StageOutcome {
            seconds: 0.002 + 1.5e-4 * prefill as f64 + 1e-4 * shape.decode_ctx.len() as f64,
        }
    }
}

/// Fixed per-stage latency for the bursty multiplex drill.
struct Fixed(f64);
impl StageExecutor for Fixed {
    fn execute(&mut self, _: &StageShape) -> StageOutcome {
        StageOutcome { seconds: self.0 }
    }
}

/// The gate's cost model: crossover at 150 resident tokens, so the
/// 64..~256-token victim spread exercises both restore paths.
fn gate_spec() -> PreemptSpec {
    PreemptSpec::new()
        .with_swap_link(2e4, 7.5e-3)
        .with_recompute_rate(1e4)
}

fn gate_scenario() -> Scenario {
    Scenario::new(
        "preempt-drill",
        Workload::gaussian(64, 192).with_seed(21),
        Arrivals::Poisson { qps: 16.0 },
        400,
    )
    .with_tiers(vec![
        SloTier::new("interactive", 0.5, 0, 0.035, 0.0),
        SloTier::new("batch", 0.5, 2, 60.0, 0.0),
    ])
    .with_prefill_chunk(64)
}

fn run_gate(policy: &mut dyn SchedulingPolicy) -> SimReport {
    // KV-bound: capacity fits ~5 concurrent (input + output)
    // reservations, so running batch decodes block interactive
    // admission on bytes, not slots — the regime where shedding can
    // only refuse new work while preemption reclaims running work.
    let cfg = SimulationConfig {
        max_batch: 8,
        kv_capacity_bytes: 1536,
        kv_bytes_per_token: 1,
        ..SimulationConfig::default()
    };
    ScenarioSimulation::new(cfg, gate_scenario()).run(policy, &mut LinearCost)
}

fn row(name: &str, report: &SimReport) {
    println!(
        "{:<14} {:>6} {:>9.3} {:>9} {:>8} {:>6} {:>6} {:>7} {:>9.3}",
        name,
        report.completed.len(),
        report.slo.tiers[0].attainment(),
        report.slo.tiers[1].good_tokens,
        report.preempt.preemptions,
        report.preempt.swaps,
        report.preempt.recomputes,
        report.preempt.mux_slots,
        report.preempt.paused_time_s,
    );
}

fn main() {
    println!("400 requests at 16 qps, 8 slots, 1536-byte KV budget (KV-bound):");
    println!("50% interactive (35 ms TBT deadline), 50% batch-tier (lax).\n");
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>8} {:>6} {:>6} {:>7} {:>9}",
        "Policy", "done", "int. att", "batch tok", "preempt", "swap", "recomp", "mux", "paused s"
    );
    let mut edf = PriorityTiers;
    row("priority-edf", &run_gate(&mut edf));
    let mut shed = ShedBatchTier::new(Box::new(PriorityTiers), 0.5, 2);
    row("shed-batch", &run_gate(&mut shed));
    let mut preempt = PreemptionPolicy::new(Box::new(PriorityTiers), gate_spec());
    row("preempt", &run_gate(&mut preempt));

    println!("\nShedding buys interactive attainment by deferring batch admission;");
    println!("preemption buys more of it by reclaiming running work: victims park");
    println!("(KV swap-out) or re-prefill (recompute), whichever the cost model");
    println!("prices cheaper per victim, and every one of them completes.\n");

    // The multiplex drill: bursty interactive arrivals pause several
    // batch decodes at once (SwapOnly keeps their contexts parked),
    // and once a burst drains the multiplexer packs compatible paused
    // victims into shared decode rows at a 0.9 quality credit.
    let mux_scenario = || {
        Scenario::new(
            "mux-drill",
            Workload::gaussian(64, 192).with_seed(11),
            Arrivals::Bursty {
                base_qps: 1.0,
                burst_qps: 40.0,
                mean_off_s: 0.8,
                mean_on_s: 0.15,
            },
            80,
        )
        .with_tiers(vec![
            SloTier::new("interactive", 0.4, 0, 0.08, 0.0),
            SloTier::new("batch", 0.6, 2, 120.0, 0.0),
        ])
    };
    let mux_cfg = SimulationConfig {
        max_batch: 4,
        ..SimulationConfig::default()
    };
    let spec = PreemptSpec::new()
        .with_mode(PreemptMode::SwapOnly)
        .with_threshold(0.75);
    let mut mux_policy =
        PreemptionPolicy::new(Box::new(PriorityTiers), spec).with_multiplex(MultiplexSpec::new());
    let report =
        ScenarioSimulation::new(mux_cfg, mux_scenario()).run(&mut mux_policy, &mut Fixed(0.01));
    println!("Bursty multiplex drill (80 requests, 4 slots, 40 qps bursts):");
    println!(
        "preempt-mux packed {} shared slots ({} multiplexed tokens) out of {} pauses; all {} requests completed.",
        report.preempt.mux_slots,
        report.preempt.mux_tokens,
        report.preempt.preemptions,
        report.completed.len()
    );
}
