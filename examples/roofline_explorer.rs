//! Roofline explorer: where does each engine win?
//!
//! Prints the execution time of a Mixtral expert-shaped GEMM on the
//! xPU, Logic-PIM and Bank-PIM as the token count (= Op/B) grows, and
//! marks the crossovers. This is the single-kernel view behind the
//! whole paper: the xPU's machine balance is ~300, Logic-PIM's ~8,
//! Bank-PIM's ~1.
//!
//! Run with `cargo run --release --example roofline_explorer`.

use duplex::compute::kernel::GemmShape;
use duplex::compute::Engine;

fn main() {
    let engines = [
        ("xPU", Engine::h100_xpu()),
        ("Logic-PIM", Engine::logic_pim()),
        ("Bank-PIM", Engine::bank_pim()),
    ];
    println!("Expert GEMM (n=14336, k=4096, FP16): time by token count\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12}  winner",
        "tokens", "xPU us", "LogicPIM us", "BankPIM us"
    );
    let mut last_winner = "";
    for m in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let shape = GemmShape {
            m,
            n: 14336,
            k: 4096,
        };
        let bytes = shape.weight_bytes(2);
        let times: Vec<f64> = engines
            .iter()
            .map(|(_, e)| e.gemm_cost(shape, bytes).seconds)
            .collect();
        let winner = engines
            .iter()
            .zip(&times)
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
             .0;
        let mark = if winner != last_winner && !last_winner.is_empty() {
            "  <-- crossover"
        } else {
            ""
        };
        last_winner = winner;
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1}  {}{}",
            m,
            times[0] * 1e6,
            times[1] * 1e6,
            times[2] * 1e6,
            winner,
            mark
        );
    }
}
