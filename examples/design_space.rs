//! Design-space ablation: why "4x bandwidth at 8 Op/B"?
//!
//! Sweeps the Logic-PIM internal-bandwidth multiple and the
//! compute-to-bandwidth ratio (machine balance) around the paper's
//! design point and reports Mixtral decode throughput. This reproduces
//! the reasoning of Sec. IV-B: under ~4x, low-Op/B layers stay
//! memory-starved; a balance under ~8 cannot ride out batched experts.
//!
//! Run with `cargo run --release --example design_space`.

use duplex::compute::spec::{EngineKind, EngineSpec};
use duplex::model::ModelConfig;
use duplex::sched::Workload;
use duplex::system::SystemConfig;
use duplex::{run, RunConfig};

fn main() {
    let model = ModelConfig::mixtral_8x7b();
    let workload = Workload::gaussian(1024, 256);
    let conventional_stack_bw = 32.0 * 32.0 / 1.5e-9; // bytes/s

    println!("Mixtral decode throughput (tokens/s) vs Logic-PIM design point\n");
    println!(
        "{:>10} {:>8} {:>12} {:>12}",
        "BW mult", "Op/B", "TFLOPS/stk", "tokens/s"
    );
    for bw_mult in [2.0f64, 4.0, 8.0] {
        for balance in [2.0f64, 8.0, 32.0] {
            let per_stack_flops = bw_mult * conventional_stack_bw * balance;
            let spec = EngineSpec {
                kind: EngineKind::LogicPim,
                peak_flops: per_stack_flops * 5.0,
                base_efficiency: 0.85,
                m_saturation: 1.0,
                min_efficiency: 0.85,
                launch_overhead_s: 2e-6,
                frequency_ghz: 0.65,
            };
            let mut system = SystemConfig::duplex_pe_et(4, 1);
            system.pim_spec = Some(spec);
            // NOTE: the bandwidth multiple is modelled through the spec's
            // machine balance here; the DRAM path stays Logic-PIM's. A
            // bandwidth multiple != 4 would also need a different TSV
            // provisioning in the hbm crate; this sweep isolates the
            // compute side of the design point.
            let r = run(RunConfig::closed_loop(
                model.clone(),
                system,
                workload.clone(),
                64,
                80,
            ));
            println!(
                "{:>10.0}x {:>8.0} {:>12.1} {:>12.0}",
                bw_mult,
                balance,
                per_stack_flops / 1e12,
                r.throughput_tokens_per_s
            );
        }
    }
    println!("\nThe paper's point (4x, 8 Op/B, 21.3 TFLOPS/stack) sits at the knee:");
    println!("more compute buys little, less compute stalls batched experts.");
}
