//! Failure drill: the Grok-scale fleet of `cluster_serving` absorbs a
//! scripted mid-run crash and a later graceful drain, and the routing
//! discipline decides how much the outage costs.
//!
//! * the crash loses the replica's queued and in-flight requests; they
//!   retry through the router with their original deadlines, so the
//!   during-failure SLO window records the damage;
//! * the drain loses nothing: displaced queue entries reroute and the
//!   replica's parked conversation KV is handed to the least-loaded
//!   survivor as one priced transfer over the interconnect;
//! * the migration-aware router additionally ships parked KV toward
//!   wherever it routes a follow-up, paying the link instead of
//!   re-prefilling the whole history.
//!
//! Run with `cargo run --release --example failure_drill`.

use duplex::experiments::{cluster_suite, run_cluster, ClusterRow, Scale};
use duplex::sched::{FaultKind, RouterKind};

fn main() {
    let scale = Scale::quick();
    let suite = cluster_suite(&scale);
    let spec = suite
        .iter()
        .find(|s| s.name == "grok_failover")
        .expect("the cluster suite ships the failure drill");
    let plan = spec.faults.as_ref().expect("the drill scripts faults");

    println!(
        "{} replicas serving {} ({} conversations, 4 rounds each):",
        spec.systems.len(),
        spec.model.name,
        spec.scenario.requests
    );
    for fault in &plan.faults {
        let what = match fault.kind {
            FaultKind::Crash { down_s } => format!("crash, down {down_s:.2}s"),
            FaultKind::Drain { down_s } => format!("drain, down {down_s:.2}s"),
            FaultKind::Slowdown { duration_s, factor } => {
                format!("slowdown x{factor:.1} for {duration_s:.2}s")
            }
        };
        println!(
            "  t={:>7.2}s  replica {}: {}",
            fault.at_s, fault.replica, what
        );
    }

    println!(
        "\n{:<20} {:>6} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "Router", "lost", "retried", "recover s", "fault SLO", "TBT p99 ms", "KV moved MB"
    );
    for kind in RouterKind::ALL {
        let mut router = kind.build();
        let report = run_cluster(spec, router.as_mut());
        let row = ClusterRow::of(spec, kind.name(), &report);
        println!(
            "{:<20} {:>6} {:>8} {:>10.3} {:>9.1}% {:>12.2} {:>12.2}",
            row.router,
            row.requests_lost,
            row.retries_issued,
            row.recovery_time_s,
            row.fault_attainment * 100.0,
            row.tbt_p99 * 1e3,
            row.kv_bytes_migrated as f64 / 1e6
        );
    }

    println!("\nA crash is lose-and-retry; a drain is a priced KV handoff. The");
    println!("migration-aware router keeps conversation histories resident");
    println!("through the outage instead of re-prefilling them from scratch.");
}
