//! Chunked prefill: bound each stage's prefill work so long prompts
//! stop spiking the decode token-gap tail.
//!
//! Both scenarios see the same Poisson arrivals of ~8k-token prompts;
//! the chunked one splits each prompt into bounded slices that
//! interleave with decode stages (each slice a prefill-with-past over
//! the slices before it), instead of stalling the whole batch for one
//! monolithic prefill.
//!
//! Run with `cargo run --release --example chunked_prefill`.

use duplex::experiments::{run_scenario, scenario_suite, Scale};
use duplex::model::ModelConfig;
use duplex::sched::PolicyKind;
use duplex::system::SystemConfig;

fn main() {
    let scale = Scale::quick();
    let model = ModelConfig::mixtral_8x7b();
    let system = SystemConfig::duplex_pe_et(4, 1);
    let batch = 64usize;
    let suite = scenario_suite(&scale, &model, &system, batch);

    println!(
        "Chunked prefill on {} / {} (batch {batch}):\n",
        model.name, system.name
    );
    println!(
        "{:<22} {:>9} {:>10} {:>12} {:>12} {:>8}",
        "Scenario", "chunk", "tokens/s", "TBT p50 ms", "TBT p99 ms", "mixed"
    );

    let mut p99 = Vec::new();
    for name in ["long_prefill", "long_prefill_chunked"] {
        let scenario = suite
            .iter()
            .find(|s| s.name == name)
            .expect("suite scenario")
            .clone();
        let chunk = scenario.prefill_chunk;
        let mut policy = PolicyKind::Fcfs.build();
        let report = run_scenario(&model, &system, scenario, policy.as_mut(), batch);
        let tbt = report.tbt();
        p99.push(tbt.p99);
        println!(
            "{:<22} {:>9} {:>10.0} {:>12.2} {:>12.2} {:>7.0}%",
            name,
            if chunk == 0 {
                "-".into()
            } else {
                chunk.to_string()
            },
            report.generation_throughput(),
            tbt.p50 * 1e3,
            tbt.p99 * 1e3,
            (1.0 - report.decode_only_fraction()) * 100.0,
        );
    }

    println!(
        "\nSame arrivals, same prompts: bounding per-stage prefill work cuts the\n\
         TBT p99 by {:.1}x while the same tokens flow end to end (the slices'\n\
         cross-attention over earlier slices is priced exactly via\n\
         prefill-with-past).",
        p99[0] / p99[1].max(1e-12)
    );
}
