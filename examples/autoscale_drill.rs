//! Autoscale drill: one diurnal Grok-scale workload offered to three
//! fleet configurations, showing what elasticity buys.
//!
//! * the **elastic** fleet starts at the two-replica floor with four
//!   standbys parked in a pool; the autoscaler watches windowed queue
//!   pressure, decode occupancy and interactive SLO attainment at the
//!   cluster's clock-merge points, provisions a standby on the diurnal
//!   up-swing (warm-up slowdown, parked-KV steal priced over the
//!   interconnect) and drains surplus replicas back to the pool on the
//!   down-swing through exactly the fault-drill drain path;
//! * the **static min** fleet pins the floor: cheapest possible bill,
//!   buried by the diurnal crest;
//! * the **static peak** fleet pins all six replicas: the best
//!   attainable SLO numbers, idling through every trough.
//!
//! The bill is `replica_seconds` — virtual seconds each replica spent
//! provisioned, pool time excluded. The PR's acceptance bar: the
//! elastic fleet holds interactive attainment within 0.03 of the peak
//! fleet while billing >= 25% fewer replica-seconds.
//!
//! Run with `cargo run --release --example autoscale_drill`.

use duplex::experiments::{autoscale_drill, run_cluster, ClusterRow, Scale};
use duplex::sched::{Arrivals, RouterKind};

fn main() {
    let scale = Scale::quick();
    let drill = autoscale_drill(&scale);
    let elastic = &drill[0];
    let policy = elastic
        .autoscale
        .as_ref()
        .expect("the drill ships an elastic variant");
    let Arrivals::Diurnal {
        mean_qps,
        period_s,
        amplitude,
    } = elastic.scenario.arrivals
    else {
        panic!("the drill offers diurnal load");
    };

    println!(
        "{} requests of diurnal {} traffic (mean {:.0} qps, amplitude {:.2}, period {:.2}s):",
        elastic.scenario.requests, elastic.model.name, mean_qps, amplitude, period_s
    );
    println!(
        "  autoscaler: floor {} of {} replicas, scale up at pressure >= {:.2} (1 window), \
         down at <= {:.2} ({} windows), provision {:.3}s + warm-up {:.3}s x{:.1}",
        policy.min_replicas,
        elastic.systems.len(),
        policy.up_pressure,
        policy.down_pressure,
        policy.down_windows,
        policy.provision_s,
        policy.warmup_s,
        policy.warmup_factor
    );

    println!(
        "\n{:<14} {:>5} {:>6} {:>10} {:>10} {:>6} {:>6} {:>9} {:>12}",
        "Fleet", "repl", "done", "int SLO", "repl-s", "ups", "downs", "up lag s", "TBT p99 ms"
    );
    let mut rows = Vec::new();
    for spec in &drill {
        let mut router = RouterKind::LeastOutstandingWork.build();
        let report = run_cluster(spec, router.as_mut());
        let row = ClusterRow::of(spec, "least-outstanding", &report);
        let label = spec
            .name
            .strip_prefix("grok_diurnal_autoscale_")
            .unwrap_or(&spec.name);
        println!(
            "{:<14} {:>5} {:>6} {:>9.1}% {:>10.2} {:>6} {:>6} {:>9.3} {:>12.2}",
            label,
            row.replicas,
            row.completed,
            row.interactive_attainment * 100.0,
            row.replica_seconds,
            row.scale_ups,
            row.scale_downs,
            row.scale_up_lag_s,
            row.tbt_p99 * 1e3
        );
        rows.push(row);
    }

    let (elastic, peak) = (&rows[0], &rows[2]);
    println!(
        "\nThe elastic fleet gives up {:.1} points of interactive attainment and",
        (peak.interactive_attainment - elastic.interactive_attainment) * 100.0
    );
    println!(
        "bills {:.0}% fewer replica-seconds than the statically peak-provisioned",
        (1.0 - elastic.replica_seconds / peak.replica_seconds) * 100.0
    );
    println!("fleet; the floor fleet shows what those replica-seconds were buying.");
}
